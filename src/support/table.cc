/**
 * @file
 * Table and bar-chart rendering implementation.
 */

#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace bsisa
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    BSISA_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    BSISA_ASSERT(cells.size() == headers_.size(),
                 "row width mismatches header");
    rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(int(widths[c])) << row[c];
        }
        os << "\n";
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows)
        emit_row(row);
}

std::string
Table::fmt(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::fmt(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
Table::fmtSep(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

BarChart::BarChart(std::string title, std::vector<std::string> seriesNames)
    : title_(std::move(title)), series(std::move(seriesNames))
{
    BSISA_ASSERT(!series.empty());
}

void
BarChart::addGroup(const std::string &label, std::vector<double> values)
{
    BSISA_ASSERT(values.size() == series.size(),
                 "group value count mismatches series count");
    groups.emplace_back(label, std::move(values));
}

void
BarChart::print(std::ostream &os, unsigned width) const
{
    double max_val = 0.0;
    std::size_t label_w = 0;
    for (const auto &[label, values] : groups) {
        label_w = std::max(label_w, label.size());
        for (double v : values)
            max_val = std::max(max_val, v);
    }
    if (max_val <= 0.0)
        max_val = 1.0;

    os << title_ << "\n";
    static const char markers[] = {'#', '=', '*', '+', '~', '%'};
    for (std::size_t s = 0; s < series.size(); ++s) {
        os << "  " << markers[s % sizeof(markers)] << " = " << series[s]
           << "\n";
    }
    for (const auto &[label, values] : groups) {
        for (std::size_t s = 0; s < values.size(); ++s) {
            const unsigned len = static_cast<unsigned>(
                values[s] / max_val * width + 0.5);
            os << "  " << std::left << std::setw(int(label_w))
               << (s == 0 ? label : "") << " |"
               << std::string(len, markers[s % sizeof(markers)])
               << " " << Table::fmt(values[s]) << "\n";
        }
    }
}

} // namespace bsisa
