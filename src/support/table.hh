/**
 * @file
 * Plain-text table and bar-chart rendering for experiment reports.
 *
 * The bench binaries regenerate the paper's tables and figures as
 * aligned ASCII tables plus horizontal bar charts, which is the closest
 * terminal-friendly analogue of the paper's bar figures.
 */

#ifndef BSISA_SUPPORT_TABLE_HH
#define BSISA_SUPPORT_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bsisa
{

/** Column-aligned text table. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with single-space-padded columns and a rule under the
     *  header. */
    void print(std::ostream &os) const;

    /** Format helpers for numeric cells. */
    static std::string fmt(std::uint64_t v);
    static std::string fmt(double v, int decimals = 2);
    /** Thousands-separated integer (e.g. 103,015,025). */
    static std::string fmtSep(std::uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Horizontal grouped bar chart; one row per label, one bar per series.
 */
class BarChart
{
  public:
    /** @param title Chart caption.
     *  @param seriesNames Legend entries, one per bar within a group. */
    BarChart(std::string title, std::vector<std::string> seriesNames);

    /** Add a labelled group with one value per series. */
    void addGroup(const std::string &label, std::vector<double> values);

    /** Render; bars are scaled to @p width characters at the maximum
     *  value across all groups and series. */
    void print(std::ostream &os, unsigned width = 50) const;

  private:
    std::string title_;
    std::vector<std::string> series;
    std::vector<std::pair<std::string, std::vector<double>>> groups;
};

} // namespace bsisa

#endif // BSISA_SUPPORT_TABLE_HH
