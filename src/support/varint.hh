/**
 * @file
 * LEB128 variable-length integers and zigzag signed mapping.
 *
 * The trace store's event section is a delta stream: most fields are
 * small signed jumps from the previous event, so zigzag + LEB128
 * shrinks a 32-byte TraceEvent to a handful of bytes.  Encoding
 * appends to a byte vector; decoding advances a raw cursor and is
 * bounds-checked against the section end so a truncated or corrupted
 * stream fails cleanly instead of reading past the mapping.
 */

#ifndef BSISA_SUPPORT_VARINT_HH
#define BSISA_SUPPORT_VARINT_HH

#include <cstdint>
#include <vector>

namespace bsisa
{

/** Append @p v LEB128-encoded (7 bits per byte, high bit = more). */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode one LEB128 value from [@p p, @p end), advancing @p p.
 * @retval false the stream ended mid-value or overflowed 64 bits
 *         (@p p and @p v are then unspecified).
 */
inline bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &v)
{
    // Fast path: the trace store's delta stream is almost entirely
    // single-byte values, and the decode loop is warm-open latency.
    if (p < end && *p < 0x80) {
        v = *p++;
        return true;
    }
    std::uint64_t result = 0;
    unsigned shift = 0;
    while (p < end) {
        const std::uint8_t byte = *p++;
        if (shift >= 63 && (byte >> (64 - shift)) != 0)
            return false;  // would overflow 64 bits
        result |= std::uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            v = result;
            return true;
        }
        shift += 7;
        if (shift >= 64)
            return false;
    }
    return false;  // truncated
}

/** Map a signed value to unsigned so small magnitudes stay small. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63);
}

/** Inverse of zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return std::int64_t(v >> 1) ^ -std::int64_t(v & 1);
}

} // namespace bsisa

#endif // BSISA_SUPPORT_VARINT_HH
