/**
 * @file
 * SPECint95-like benchmark parameter sets.
 *
 * Table-2 dynamic instruction counts are the paper's, verbatim; the
 * shape parameters encode each benchmark's published character:
 *   - compress: tiny loopy kernel over a big data buffer;
 *   - gcc: very large code, many small blocks, many unbiased branches;
 *   - go: large code, the least predictable branches in the suite
 *     (the paper's figure 3 shows it LOSING with enlargement);
 *   - ijpeg: small code, big predictable loop bodies;
 *   - li (xlisp): small recursive interpreter, call-dominated;
 *   - m88ksim: mid-size simulator loop, predictable dispatch;
 *   - perl: mid-size interpreter, moderate predictability;
 *   - vortex: large OO database, call-heavy, biased branches.
 */

#include "workloads/specmix.hh"

namespace bsisa
{

namespace
{

WorkloadParams
base()
{
    WorkloadParams p;
    p.numLibFuncs = 4;
    p.maxLoopTrip = 8;
    p.fpFraction = 0.04;
    p.mulDivFraction = 0.07;
    p.memOpsPerBurst = 1.2;
    p.hotFraction = 0.6;
    return p;
}

} // namespace

std::vector<SpecBenchmark>
specint95Suite()
{
    std::vector<SpecBenchmark> suite;

    {
        WorkloadParams p = base();
        p.name = "compress";
        p.seed = 101;
        p.numFuncs = 8;
        p.numLibFuncs = 2;
        p.itemsPerFunc = 9;
        p.meanBurstOps = 3.2;
        p.branchDensity = 0.30;
        p.loopDensity = 0.30;
        p.callDensity = 0.14;
        p.fracPattern = 0.40;
        p.fracRandom = 0.10;
        p.biasedP = 0.84;
        p.dataWords = 262144;
        p.memOpsPerBurst = 1.8;
        p.mulDivFraction = 0.18;
        suite.push_back({p, "test.in*", 103015025});
    }
    {
        WorkloadParams p = base();
        p.name = "gcc";
        p.seed = 102;
        p.numFuncs = 400;
        p.numLibFuncs = 8;
        p.itemsPerFunc = 12;
        p.meanBurstOps = 1.4;
        p.branchDensity = 0.52;
        p.loopDensity = 0.05;
        p.callDensity = 0.2;
        p.switchDensity = 0.05;
        p.fracPattern = 0.34;
        p.fracRandom = 0.13;
        p.biasedP = 0.86;
        p.dataWords = 32768;
        p.hotFraction = 0.85;
        p.memOpsPerBurst = 0.9;
        suite.push_back({p, "jump.i", 154450036});
    }
    {
        WorkloadParams p = base();
        p.name = "go";
        p.seed = 103;
        p.numFuncs = 380;
        p.numLibFuncs = 4;
        p.itemsPerFunc = 15;
        p.meanBurstOps = 1.9;
        p.branchDensity = 0.55;
        p.loopDensity = 0.05;
        p.callDensity = 0.16;
        p.fracPattern = 0.26;
        p.fracRandom = 0.20;
        p.biasedP = 0.82;
        p.dataWords = 16384;
        p.hotFraction = 0.9;
        p.memOpsPerBurst = 0.9;
        suite.push_back({p, "2stone9.in*", 125637006});
    }
    {
        WorkloadParams p = base();
        p.name = "ijpeg";
        p.seed = 104;
        p.numFuncs = 18;
        p.itemsPerFunc = 13;
        p.meanBurstOps = 2.6;
        p.branchDensity = 0.30;
        p.loopDensity = 0.30;
        p.callDensity = 0.12;
        p.fracPattern = 0.66;
        p.fracRandom = 0.03;
        p.biasedP = 0.93;
        p.dataWords = 131072;
        p.fpFraction = 0.08;
        p.mulDivFraction = 0.12;
        p.memOpsPerBurst = 1.2;
        suite.push_back({p, "specmun.ppm*", 206802135});
    }
    {
        WorkloadParams p = base();
        p.name = "li";
        p.seed = 105;
        p.numFuncs = 14;
        p.numLibFuncs = 3;
        p.itemsPerFunc = 8;
        p.meanBurstOps = 1.5;
        p.branchDensity = 0.42;
        p.loopDensity = 0.08;
        p.callDensity = 0.30;
        p.fracPattern = 0.55;
        p.fracRandom = 0.04;
        p.biasedP = 0.90;
        p.dataWords = 32768;
        p.memOpsPerBurst = 0.9;
        suite.push_back({p, "train.lsp", 187727922});
    }
    {
        WorkloadParams p = base();
        p.name = "m88ksim";
        p.seed = 106;
        p.numFuncs = 40;
        p.itemsPerFunc = 11;
        p.meanBurstOps = 1.65;
        p.branchDensity = 0.40;
        p.loopDensity = 0.14;
        p.callDensity = 0.18;
        p.switchDensity = 0.05;
        p.fracPattern = 0.66;
        p.fracRandom = 0.04;
        p.biasedP = 0.94;
        p.dataWords = 16384;
        p.memOpsPerBurst = 0.9;
        suite.push_back({p, "dcrand.train", 120738195});
    }
    {
        WorkloadParams p = base();
        p.name = "perl";
        p.seed = 107;
        p.numFuncs = 48;
        p.numLibFuncs = 6;
        p.itemsPerFunc = 11;
        p.meanBurstOps = 1.5;
        p.branchDensity = 0.45;
        p.loopDensity = 0.10;
        p.callDensity = 0.24;
        p.switchDensity = 0.06;
        p.fracPattern = 0.42;
        p.fracRandom = 0.10;
        p.biasedP = 0.88;
        p.dataWords = 32768;
        p.memOpsPerBurst = 0.9;
        suite.push_back({p, "scrabbl.pl*", 78148849});
    }
    {
        WorkloadParams p = base();
        p.name = "vortex";
        p.seed = 108;
        p.numFuncs = 120;
        p.numLibFuncs = 6;
        p.itemsPerFunc = 11;
        p.meanBurstOps = 1.8;
        p.branchDensity = 0.40;
        p.loopDensity = 0.10;
        p.callDensity = 0.28;
        p.fracPattern = 0.55;
        p.fracRandom = 0.06;
        p.biasedP = 0.90;
        p.dataWords = 65536;
        p.hotFraction = 0.7;
        p.memOpsPerBurst = 1.0;
        suite.push_back({p, "vortex.big*", 232003378});
    }

    return suite;
}

} // namespace bsisa
