/**
 * @file
 * The eight SPECint95-like benchmark configurations (Table 2).
 *
 * Parameters are tuned so each synthetic stand-in matches its
 * benchmark's architecturally relevant shape: hot code footprint
 * (gcc/go/vortex large, compress/li/ijpeg small — the paper's figures
 * 6 and 7), branch predictability (gcc/go unbiased, m88ksim/ijpeg
 * predictable), basic-block size (~4-7 ops, mean 5.2 conventional),
 * and call density.  Dynamic instruction budgets are the Table-2
 * counts divided by specScaleDivisor (a cycle simulator on one
 * laptop core stands in for the authors' testbed).
 */

#ifndef BSISA_WORKLOADS_SPECMIX_HH
#define BSISA_WORKLOADS_SPECMIX_HH

#include <vector>

#include "workloads/synth.hh"

namespace bsisa
{

/** One benchmark of the suite. */
struct SpecBenchmark
{
    WorkloadParams params;
    /** Input-set label reported in Table 2. */
    const char *input;
    /** Table-2 dynamic conventional-ISA instruction count. */
    std::uint64_t paperInstructions;

    /** Scaled dynamic-op budget for simulation. */
    std::uint64_t
    scaledBudget(std::uint64_t divisor) const
    {
        return paperInstructions / divisor;
    }
};

/** Default scale-down factor for dynamic instruction counts. */
constexpr std::uint64_t specScaleDivisor = 100;

/** The eight benchmarks in the paper's order. */
std::vector<SpecBenchmark> specint95Suite();

} // namespace bsisa

#endif // BSISA_WORKLOADS_SPECMIX_HH
