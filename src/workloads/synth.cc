/**
 * @file
 * Synthetic workload generator implementation.
 *
 * Functions are organized into four call tiers plus a library tier;
 * calls only go downward (tier k calls tier k+1 or library), bounding
 * the dynamic call fan-out while keeping call/return density high —
 * the paper identifies calls and returns as the main limiter on block
 * enlargement (section 5, figure 5 discussion).
 */

#include "workloads/synth.hh"

#include "core/enlarge.hh"
#include "ir/verifier.hh"
#include "opt/inliner.hh"
#include "opt/passes.hh"
#include "regalloc/linearscan.hh"
#include "support/logging.hh"
#include <cmath>

#include "support/rng.hh"

namespace bsisa
{

namespace
{

/** Per-function generation context. */
class FuncBuilder
{
  public:
    FuncBuilder(Module &module, Function &fn,
                const WorkloadParams &params, Rng rng,
                const std::vector<FuncId> &callees,
                const std::vector<FuncId> &libCallees,
                std::uint64_t dataAddr)
        : module(module), fn(fn), params(params), rng(rng),
          callees(callees), libCallees(libCallees), dataAddr(dataAddr)
    {
    }

    void
    build()
    {
        cur = fn.newBlock();
        // The per-call random word: every condition derives from a
        // different bit window of it, so branch outcomes vary call to
        // call without per-branch LCG code.
        arg = fn.newReg();
        emit(makeMov(arg, regArg0));
        state = fn.newReg();
        emit(makeBinI(Opcode::AddI, state, arg,
                      static_cast<std::int64_t>(rng.next() >> 1)));
        lcgStep();
        sink = fn.newReg();
        emit(makeBin(Opcode::Xor, sink, state, arg));

        const unsigned items = params.itemsPerFunc;
        for (unsigned i = 0; i < items; ++i)
            genItem(0);

        // Return a mixing of everything computed.
        const RegNum ret = fn.newReg();
        emit(makeBinI(Opcode::AndI, ret, sink, 0xffffff));
        emit(makeMov(regRet, ret));
        emit(makeRet());
    }

  private:
    Module &module;
    Function &fn;
    const WorkloadParams &params;
    Rng rng;
    const std::vector<FuncId> &callees;
    const std::vector<FuncId> &libCallees;
    std::uint64_t dataAddr;

    BlockId cur = 0;
    RegNum arg = 0;
    RegNum state = 0;  //!< per-call random word
    RegNum sink = 0;   //!< keeps burst results live

    void emit(Operation op) { fn.blocks[cur].ops.push_back(op); }

    BlockId
    startBlock()
    {
        cur = fn.newBlock();
        return cur;
    }

    /** Advance the per-function pseudo-random state (2 ops). */
    void
    lcgStep()
    {
        const RegNum k = fn.newReg();
        emit(makeMovI(k, 6364136223846793005LL));
        const RegNum t = fn.newReg();
        emit(makeBin(Opcode::Mul, t, state, k));
        const RegNum next = fn.newReg();
        emit(makeBinI(Opcode::AddI, next, t, 1442695040888963407LL));
        state = next;
    }

    /** A run of computational operations folded into the sink. */
    void
    computeBurst()
    {
        const unsigned n = rng.sizeDraw(params.meanBurstOps, 6);
        RegNum acc = sink;
        for (unsigned i = 0; i < n; ++i) {
            const RegNum out = fn.newReg();
            const double pick = rng.nextReal();
            if (pick < params.fpFraction) {
                const Opcode fp_ops[] = {Opcode::FAdd, Opcode::FSub,
                                         Opcode::FMul, Opcode::FCvt};
                const Opcode op = fp_ops[rng.nextBelow(4)];
                if (op == Opcode::FCvt) {
                    emit(makeBinI(Opcode::AddI, out, acc, 0));
                    Operation cvt;
                    cvt.op = Opcode::FCvt;
                    cvt.dst = out;
                    cvt.src1 = acc;
                    fn.blocks[cur].ops.back() = cvt;
                } else {
                    emit(makeBin(op, out, acc, state));
                }
            } else if (pick < params.fpFraction +
                                  params.mulDivFraction) {
                const Opcode md[] = {Opcode::Mul, Opcode::Div,
                                     Opcode::Rem};
                emit(makeBin(md[rng.nextBelow(3)], out, acc, state));
            } else {
                const Opcode alu[] = {Opcode::Add,  Opcode::Sub,
                                      Opcode::Xor,  Opcode::Or,
                                      Opcode::And,  Opcode::Shl,
                                      Opcode::Shr,  Opcode::CmpLt};
                emit(makeBin(alu[rng.nextBelow(8)], out, acc, state));
            }
            acc = out;
        }
        // Memory traffic: address = data + ((acc >> 5) & mask) * 8.
        const unsigned mem_ops =
            rng.chance(params.memOpsPerBurst -
                       std::floor(params.memOpsPerBurst))
                ? static_cast<unsigned>(params.memOpsPerBurst) + 1
                : static_cast<unsigned>(params.memOpsPerBurst);
        for (unsigned i = 0; i < mem_ops; ++i) {
            const RegNum idx = fn.newReg();
            emit(makeBinI(Opcode::ShrI, idx, acc, 5));
            const RegNum masked = fn.newReg();
            emit(makeBinI(Opcode::AndI, masked, idx,
                          params.dataWords - 1));
            const RegNum off = fn.newReg();
            emit(makeBinI(Opcode::ShlI, off, masked, 3));
            if (rng.chance(0.7)) {
                const RegNum v = fn.newReg();
                emit(makeLd(v, off,
                            static_cast<std::int64_t>(dataAddr)));
                const RegNum mixed = fn.newReg();
                emit(makeBin(Opcode::Xor, mixed, acc, v));
                acc = mixed;
            } else {
                emit(makeSt(off, static_cast<std::int64_t>(dataAddr),
                            acc));
            }
        }
        sink = acc;
    }

    /** Branch condition per the benchmark's behaviour mix. */
    RegNum
    condition()
    {
        const double pick = rng.nextReal();
        const RegNum c = fn.newReg();
        if (pick < params.fracPattern) {
            // Loop-counter pattern on HIGH bits: the outcome holds for
            // runs of 8-64 consecutive calls, which simple counters
            // track almost perfectly (like SPEC's loop-exit and mode
            // branches).
            const unsigned shift = 3 + rng.nextBelow(4);
            const RegNum t1 = fn.newReg();
            emit(makeBinI(Opcode::ShrI, t1, arg, shift));
            const RegNum t2 = fn.newReg();
            emit(makeBinI(Opcode::AndI, t2, t1, 1));
            emit(makeBinI(Opcode::CmpEqI, c, t2, 0));
        } else if (pick < params.fracPattern + params.fracRandom) {
            // 50/50 pseudo-random: one private bit of the call's
            // random word.
            const unsigned shift = 5 + rng.nextBelow(55);
            const RegNum t = fn.newReg();
            emit(makeBinI(Opcode::ShrI, t, state, shift));
            emit(makeBinI(Opcode::AndI, c, t, 1));
        } else {
            // Biased: a private 6-bit window compared to a threshold.
            const unsigned shift = 5 + rng.nextBelow(50);
            const RegNum t1 = fn.newReg();
            emit(makeBinI(Opcode::ShrI, t1, state, shift));
            const RegNum t2 = fn.newReg();
            emit(makeBinI(Opcode::AndI, t2, t1, 63));
            const std::int64_t threshold =
                static_cast<std::int64_t>(params.biasedP * 64.0);
            emit(makeBinI(Opcode::CmpLtI, c, t2, threshold));
        }
        return c;
    }

    void
    genItem(unsigned depth)
    {
        const double pick = rng.nextReal();
        double acc = params.branchDensity;
        if (pick < acc) {
            genDiamond(depth);
            return;
        }
        acc += params.loopDensity;
        if (pick < acc && depth < 2) {
            genLoop(depth);
            return;
        }
        acc += params.callDensity;
        if (pick < acc) {
            if (genCall())
                return;
            // fall through to a burst when no callee is eligible
            computeBurst();
            return;
        }
        acc += params.switchDensity;
        if (pick < acc) {
            genSwitch();
            return;
        }
        computeBurst();
    }

    void
    genDiamond(unsigned depth)
    {
        const RegNum c = condition();
        const BlockId then_b = fn.newBlock();
        const bool has_else = rng.chance(0.6);
        const BlockId else_b = has_else ? fn.newBlock() : invalidId;
        const BlockId join_b = fn.newBlock();
        emit(makeTrap(c, then_b, has_else ? else_b : join_b));

        cur = then_b;
        computeBurst();
        if (depth < 2 && rng.chance(0.25))
            genItem(depth + 1);
        emit(makeJmp(join_b));

        if (has_else) {
            cur = else_b;
            computeBurst();
            emit(makeJmp(join_b));
        }
        cur = join_b;
    }

    void
    genLoop(unsigned depth)
    {
        const unsigned trips = 2 + rng.nextBelow(params.maxLoopTrip - 1);
        const RegNum j = fn.newReg();
        emit(makeMovI(j, 0));
        const BlockId head = fn.newBlock();
        emit(makeJmp(head));
        cur = head;
        const RegNum c = fn.newReg();
        emit(makeBinI(Opcode::CmpLtI, c, j, trips));
        const BlockId body = fn.newBlock();
        const BlockId exit = fn.newBlock();
        emit(makeTrap(c, body, exit));
        cur = body;
        computeBurst();
        genItem(depth + 1);
        if (rng.chance(0.5))
            genItem(depth + 1);
        emit(makeBinI(Opcode::AddI, j, j, 1));
        emit(makeJmp(head));
        cur = exit;
    }

    bool
    genCall()
    {
        // Library calls are a bounded fraction of ALL call sites, so
        // unenlargeable code gets a realistic (small) dynamic share;
        // leaf-tier functions otherwise simply compute.
        FuncId callee;
        const bool lib_roll =
            !libCallees.empty() && rng.chance(params.libCallFraction);
        if (lib_roll) {
            callee = libCallees[rng.nextBelow(libCallees.size())];
        } else if (!callees.empty()) {
            callee = callees[rng.nextBelow(callees.size())];
        } else {
            return false;
        }
        const RegNum a = fn.newReg();
        if (rng.chance(0.7)) {
            // Structured argument: loop-counter patterns stay
            // learnable down the call tiers.
            emit(makeBinI(Opcode::AddI, a, arg,
                          static_cast<std::int64_t>(rng.nextBelow(8))));
        } else {
            emit(makeBin(Opcode::Xor, a, state, arg));
        }
        emit(makeMov(regArg0, a));
        const BlockId cont = fn.newBlock();
        emit(makeCall(callee, cont));
        cur = cont;
        const RegNum merged = fn.newReg();
        emit(makeBin(Opcode::Add, merged, sink, regRet));
        sink = merged;
        return true;
    }

    void
    genSwitch()
    {
        const unsigned cases = 3 + rng.nextBelow(3);
        const unsigned shift = 5 + rng.nextBelow(50);
        const RegNum sel = fn.newReg();
        emit(makeBinI(Opcode::ShrI, sel, state, shift));
        const BlockId join_b = fn.newBlock();
        std::vector<BlockId> targets;
        for (unsigned i = 0; i < cases; ++i)
            targets.push_back(fn.newBlock());
        const auto table = static_cast<std::uint32_t>(
            fn.jumpTables.size());
        fn.jumpTables.push_back(targets);
        emit(makeIJmp(sel, table));
        for (BlockId t : targets) {
            cur = t;
            computeBurst();
            emit(makeJmp(join_b));
        }
        cur = join_b;
    }
};

} // namespace

std::uint64_t
workloadCodeBytes(const Module &module)
{
    return module.numOps() * opBytes;
}

Module
generateWorkload(const WorkloadParams &params)
{
    Rng rng(params.seed * 0x9e3779b97f4a7c15ULL + 0x100);
    Module module;

    // Data segment (pseudo-random contents).
    const std::uint64_t data_addr = module.allocData(params.dataWords);
    {
        Rng data_rng = rng.fork();
        for (auto &word : module.data)
            word = data_rng.next() & 0xffff;
    }

    // Function skeletons first so call targets resolve.
    Function &main_fn = module.addFunction("main");
    module.mainFunc = main_fn.id;
    std::vector<FuncId> app_funcs;
    for (unsigned i = 0; i < params.numFuncs; ++i) {
        Function &f =
            module.addFunction("f" + std::to_string(i));
        app_funcs.push_back(f.id);
    }
    std::vector<FuncId> lib_funcs;
    for (unsigned i = 0; i < params.numLibFuncs; ++i) {
        Function &f =
            module.addFunction("lib" + std::to_string(i));
        f.isLibrary = true;
        lib_funcs.push_back(f.id);
    }

    // Call tiers: tier k may call tier k+1 and the library; the last
    // tier and library functions are leaves.
    const unsigned tiers = 4;
    auto tier_of = [&](unsigned idx) {
        return idx * tiers / std::max(1u, params.numFuncs);
    };

    for (unsigned i = 0; i < params.numFuncs; ++i) {
        std::vector<FuncId> callees;
        const unsigned my_tier = tier_of(i);
        if (my_tier + 1 < tiers) {
            for (unsigned j = 0; j < params.numFuncs; ++j)
                if (tier_of(j) == my_tier + 1)
                    callees.push_back(app_funcs[j]);
        }
        FuncBuilder builder(module, module.functions[app_funcs[i]],
                            params, rng.fork(), callees, lib_funcs,
                            data_addr);
        builder.build();
    }
    for (FuncId lib : lib_funcs) {
        const std::vector<FuncId> none;
        WorkloadParams leaf = params;
        leaf.callDensity = 0.0;
        leaf.itemsPerFunc = std::max(2u, params.itemsPerFunc / 3);
        FuncBuilder builder(module, module.functions[lib], leaf,
                            rng.fork(), none, none, data_addr);
        builder.build();
    }

    // main: loop over tier-0 functions with hot/cold gating.
    {
        Function &fn = module.functions[module.mainFunc];
        const BlockId entry = fn.newBlock();
        BlockId cur = entry;
        auto emit = [&](Operation op) {
            fn.blocks[cur].ops.push_back(op);
        };

        const RegNum i = fn.newReg();
        emit(makeMovI(i, 0));
        const RegNum acc = fn.newReg();
        emit(makeMovI(acc, 0));
        const BlockId head = fn.newBlock();
        emit(makeJmp(head));
        cur = head;
        const RegNum c = fn.newReg();
        emit(makeBinI(Opcode::CmpLtI, c, i,
                      static_cast<std::int64_t>(params.mainTrips)));
        const BlockId body = fn.newBlock();
        const BlockId exit = fn.newBlock();
        emit(makeTrap(c, body, exit));

        cur = body;
        Rng hot_rng = rng.fork();
        for (unsigned fi = 0; fi < params.numFuncs; ++fi) {
            if (tier_of(fi) != 0)
                continue;
            const bool hot = hot_rng.chance(params.hotFraction);
            BlockId cont_after = invalidId;
            if (!hot) {
                // Cold functions run every 16th iteration.
                const RegNum masked = fn.newReg();
                emit(makeBinI(Opcode::AndI, masked, i, 15));
                const RegNum cold_c = fn.newReg();
                emit(makeBinI(Opcode::CmpEqI, cold_c, masked,
                              hot_rng.nextBelow(16)));
                const BlockId call_b = fn.newBlock();
                const BlockId skip_b = fn.newBlock();
                emit(makeTrap(cold_c, call_b, skip_b));
                cur = call_b;
                cont_after = skip_b;
            }
            const RegNum a = fn.newReg();
            emit(makeBinI(Opcode::AddI, a, i,
                          static_cast<std::int64_t>(fi * 17)));
            emit(makeMov(regArg0, a));
            const BlockId cont = fn.newBlock();
            emit(makeCall(app_funcs[fi], cont));
            cur = cont;
            const RegNum merged = fn.newReg();
            emit(makeBin(Opcode::Add, merged, acc, regRet));
            emit(makeMov(acc, merged));
            if (cont_after != invalidId) {
                emit(makeJmp(cont_after));
                cur = cont_after;
            }
        }
        emit(makeBinI(Opcode::AddI, i, i, 1));
        emit(makeJmp(head));

        cur = exit;
        emit(makeMov(regRet, acc));
        emit(makeHalt());
    }

    verifyModuleOrDie(module, "after workload generation");
    if (params.inlineSmallCalls) {
        // Generated leaf functions are utility-sized (~100 ops), so
        // the threshold sits above that; growth stays bounded.
        InlineOptions inline_options;
        inline_options.maxCalleeOps = 200;
        inline_options.growthLimit = 6.0;
        inlineCalls(module, inline_options);
        verifyModuleOrDie(module, "after inlining");
    }
    optimizeModule(module);
    allocateModule(module);
    splitOversizedBlocks(module, 16);
    verifyModuleOrDie(module, "after workload compilation");
    return module;
}

} // namespace bsisa
