/**
 * @file
 * Synthetic SPECint95-like workload generation.
 *
 * The paper evaluates on SPECint95 binaries compiled by a retargeted
 * Intel Reference C Compiler.  Neither is available, so we generate
 * structured programs whose *architecturally relevant* characteristics
 * match each benchmark: hot code footprint (drives icache behaviour
 * and figure 6/7), dynamic basic-block size (figure 5), branch
 * predictability mix (figures 3 vs 4), call density (the paper's main
 * limiter on block enlargement), and data footprint.
 *
 * Branch conditions come in three flavours:
 *   - pattern: derived from loop counters; two-level predictable;
 *   - biased:  pseudo-random with probability biasedP; accuracy is
 *              approximately max(p, 1-p);
 *   - random:  pseudo-random 50/50; essentially unpredictable.
 * The per-benchmark mix tunes overall prediction accuracy.
 *
 * Generation is fully deterministic from the seed; programs terminate
 * naturally but are sized so experiments normally stop at the
 * configured dynamic-op budget.
 */

#ifndef BSISA_WORKLOADS_SYNTH_HH
#define BSISA_WORKLOADS_SYNTH_HH

#include <cstdint>
#include <string>

#include "ir/module.hh"

namespace bsisa
{

/** Shape parameters for one synthetic benchmark. */
struct WorkloadParams
{
    std::string name;
    std::uint64_t seed = 1;

    /** Number of application functions (excluding main). */
    unsigned numFuncs = 24;
    /** Number of library functions (never enlarged, condition 5). */
    unsigned numLibFuncs = 4;
    /** Items (statement groups) per function body. */
    unsigned itemsPerFunc = 10;
    /** Mean operations per compute burst (drives basic-block size). */
    double meanBurstOps = 4.0;
    /** Probability an item is an if/else diamond. */
    double branchDensity = 0.45;
    /** Probability an item is a counted loop. */
    double loopDensity = 0.15;
    /** Probability an item is a call to another function. */
    double callDensity = 0.2;
    /** Probability an item is a switch (indirect jump). */
    double switchDensity = 0.03;
    /** Loop trip counts drawn from [2, maxLoopTrip]. */
    unsigned maxLoopTrip = 8;

    /** Branch-behaviour mix; must sum to <= 1 (rest is biased). */
    double fracPattern = 0.45;
    double fracRandom = 0.10;
    /** Taken probability of biased branches. */
    double biasedP = 0.88;

    /** Fraction of FP-class operations in compute bursts. */
    double fpFraction = 0.05;
    /** Fraction of multiply/divide in compute bursts. */
    double mulDivFraction = 0.08;
    /** Loads+stores per compute burst, roughly. */
    double memOpsPerBurst = 1.2;

    /** Global data words (dcache footprint). */
    unsigned dataWords = 4096;
    /** Fraction of functions called every main-loop iteration; the
     *  rest are called every 16th iteration (hot/cold locality). */
    double hotFraction = 0.6;
    /** Fraction of call sites that target library functions (the
     *  paper's unenlargeable code, condition 5). */
    double libCallFraction = 0.12;
    /** Main-loop trip count (experiments usually stop at the dynamic
     *  op budget first). */
    std::uint64_t mainTrips = 1u << 30;
    /** Inline small leaf functions before optimization (the paper's
     *  section-6 extension). */
    bool inlineSmallCalls = false;
};

/**
 * Generate, optimize, register-allocate, and block-split a workload;
 * the returned module is ready for both machines.
 */
Module generateWorkload(const WorkloadParams &params);

/** Static op count the generator aims at is emergent; this helper
 *  reports the conventional code bytes of a generated module. */
std::uint64_t workloadCodeBytes(const Module &module);

} // namespace bsisa

#endif // BSISA_WORKLOADS_SYNTH_HH
