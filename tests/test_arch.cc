/**
 * @file
 * Unit tests for the ISA definition: Table-1 latencies, opcode
 * properties, and operation factories.
 */

#include <gtest/gtest.h>

#include "arch/operation.hh"

using namespace bsisa;

TEST(InstrClass, Table1Latencies)
{
    // These are the paper's Table 1, verbatim.
    EXPECT_EQ(execLatency(InstrClass::IntAlu), 1u);
    EXPECT_EQ(execLatency(InstrClass::FpAdd), 3u);
    EXPECT_EQ(execLatency(InstrClass::FpIntMul), 3u);
    EXPECT_EQ(execLatency(InstrClass::FpIntDiv), 8u);
    EXPECT_EQ(execLatency(InstrClass::Load), 2u);
    EXPECT_EQ(execLatency(InstrClass::Store), 1u);
    EXPECT_EQ(execLatency(InstrClass::BitField), 1u);
    EXPECT_EQ(execLatency(InstrClass::Branch), 1u);
}

TEST(Opcode, ClassMapping)
{
    EXPECT_EQ(opcodeClass(Opcode::Add), InstrClass::IntAlu);
    EXPECT_EQ(opcodeClass(Opcode::Mul), InstrClass::FpIntMul);
    EXPECT_EQ(opcodeClass(Opcode::Div), InstrClass::FpIntDiv);
    EXPECT_EQ(opcodeClass(Opcode::FAdd), InstrClass::FpAdd);
    EXPECT_EQ(opcodeClass(Opcode::FDiv), InstrClass::FpIntDiv);
    EXPECT_EQ(opcodeClass(Opcode::Ld), InstrClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::St), InstrClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::Shl), InstrClass::BitField);
    EXPECT_EQ(opcodeClass(Opcode::BitTest), InstrClass::BitField);
    EXPECT_EQ(opcodeClass(Opcode::Trap), InstrClass::Branch);
    EXPECT_EQ(opcodeClass(Opcode::Fault), InstrClass::Branch);
    EXPECT_EQ(opcodeClass(Opcode::Call), InstrClass::Branch);
}

TEST(Opcode, Terminators)
{
    EXPECT_TRUE(isTerminator(Opcode::Jmp));
    EXPECT_TRUE(isTerminator(Opcode::Trap));
    EXPECT_TRUE(isTerminator(Opcode::Call));
    EXPECT_TRUE(isTerminator(Opcode::IJmp));
    EXPECT_TRUE(isTerminator(Opcode::Ret));
    EXPECT_TRUE(isTerminator(Opcode::Halt));
    // Faults live in block interiors, so they are NOT terminators.
    EXPECT_FALSE(isTerminator(Opcode::Fault));
    EXPECT_FALSE(isTerminator(Opcode::Add));
    EXPECT_FALSE(isTerminator(Opcode::Ld));
}

TEST(Opcode, DestAndSources)
{
    EXPECT_TRUE(hasDest(Opcode::Add));
    EXPECT_TRUE(hasDest(Opcode::Ld));
    EXPECT_FALSE(hasDest(Opcode::St));
    EXPECT_FALSE(hasDest(Opcode::Trap));
    EXPECT_FALSE(hasDest(Opcode::Fault));

    EXPECT_EQ(numSources(Opcode::MovI), 0u);
    EXPECT_EQ(numSources(Opcode::Mov), 1u);
    EXPECT_EQ(numSources(Opcode::Add), 2u);
    EXPECT_EQ(numSources(Opcode::AddI), 1u);
    EXPECT_EQ(numSources(Opcode::St), 2u);
    EXPECT_EQ(numSources(Opcode::Trap), 1u);
    EXPECT_EQ(numSources(Opcode::Fault), 1u);
}

TEST(Operation, Factories)
{
    const Operation movi = makeMovI(5, -7);
    EXPECT_EQ(movi.op, Opcode::MovI);
    EXPECT_EQ(movi.dst, 5u);
    EXPECT_EQ(movi.imm, -7);

    const Operation trap = makeTrap(3, 10, 11);
    EXPECT_EQ(trap.op, Opcode::Trap);
    EXPECT_EQ(trap.src1, 3u);
    EXPECT_EQ(trap.target0, 10u);
    EXPECT_EQ(trap.target1, 11u);
    EXPECT_TRUE(trap.terminates());

    const Operation fault = makeFault(4, 99);
    EXPECT_EQ(fault.op, Opcode::Fault);
    EXPECT_EQ(fault.target0, 99u);
    EXPECT_FALSE(fault.terminates());

    const Operation call = makeCall(2, 7);
    EXPECT_EQ(call.callee, 2u);
    EXPECT_EQ(call.target0, 7u);

    const Operation ld = makeLd(1, 2, 16);
    EXPECT_EQ(ld.cls(), InstrClass::Load);
    EXPECT_EQ(ld.latency(), 2u);
}

TEST(Operation, ToStringSmoke)
{
    EXPECT_EQ(makeMovI(5, 9).toString(), "movi r5, 9");
    EXPECT_EQ(makeBin(Opcode::Add, 1, 2, 3).toString(), "add r1, r2, r3");
    EXPECT_EQ(makeLd(1, 2, 8).toString(), "ld r1, [r2 + 8]");
    EXPECT_NE(makeTrap(1, 2, 3).toString().find("trap"),
              std::string::npos);
}

TEST(Operation, OpBytes)
{
    // Layout assumes fixed-width 4-byte operations.
    EXPECT_EQ(opBytes, 4u);
}
