/**
 * @file
 * Direct tests of the block-structured fetch source: the committed
 * atomic-block stream must tile the basic-block stream exactly, carry
 * the right memory addresses, classify mispredictions correctly, and
 * behave deterministically.
 */

#include <gtest/gtest.h>

#include <map>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "frontend/compile.hh"
#include "sim/bsa_source.hh"
#include "sim/interp.hh"
#include "support/rng.hh"
#include "workloads/synth.hh"

using namespace bsisa;

namespace
{

const char *kBranchy = R"(
    var d[32];
    fn leaf(x) { if (x & 1) { return x * 3; } return x + 1; }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 200; i = i + 1) {
            if (d[i & 31] < 4) { acc = acc + leaf(i); }
            else { acc = acc * 2 + 1; }
            switch (acc & 3) {
                case 0: { acc = acc + 1; }
                case 1: { acc = acc ^ 9; }
                case 2: { acc = acc - 1; }
                case 3: { acc = acc + d[acc & 31]; }
            }
            acc = acc & 0xffff;
        }
        return acc;
    }
)";

struct TestRig
{
    Module module;
    BsaModule bsa;

    explicit TestRig(const char *source, std::uint64_t data_seed = 5)
        : module(compileBlockCOrDie(source))
    {
        Rng rng(data_seed);
        for (auto &word : module.data)
            word = rng.nextBelow(8);
        bsa = enlargeModule(module, EnlargeConfig{});
        layoutBsaModule(bsa);
    }
};

} // namespace

TEST(BsaSource, TilesTheBasicBlockStreamExactly)
{
    TestRig setup(kBranchy);
    Interp::Limits limits;

    // Ground truth: the committed basic-block sequence.
    std::vector<std::pair<FuncId, BlockId>> bbs;
    {
        Interp interp(setup.module, limits);
        BlockEvent ev;
        while (interp.step(ev))
            bbs.emplace_back(ev.func, ev.block);
    }

    MachineConfig machine;
    BsaFetchSource source(setup.bsa, machine, limits);
    TimingUnit unit;
    std::size_t cursor = 0;
    std::uint64_t total_ops = 0;
    while (source.next(unit)) {
        // Identify the committed block by address.
        const AtomicBlock *blk = nullptr;
        for (const auto &b : setup.bsa.blocks)
            if (b.addr == unit.pc)
                blk = &b;
        ASSERT_NE(blk, nullptr);
        // Its constituent bbs must match the stream at the cursor.
        for (BlockId bb : blk->bbs) {
            ASSERT_LT(cursor, bbs.size());
            EXPECT_EQ(bbs[cursor].first, blk->func);
            EXPECT_EQ(bbs[cursor].second, bb);
            ++cursor;
        }
        total_ops += unit.opCount;
    }
    EXPECT_EQ(cursor, bbs.size());  // no gaps, no overlap
    EXPECT_GT(total_ops, 0u);
}

TEST(BsaSource, MemAddrsMatchFunctionalExecution)
{
    TestRig setup(kBranchy);
    Interp::Limits limits;

    std::vector<std::uint64_t> want;
    {
        Interp interp(setup.module, limits);
        BlockEvent ev;
        while (interp.step(ev))
            want.insert(want.end(), ev.memAddrs,
                        ev.memAddrs + ev.memCount);
    }

    MachineConfig machine;
    BsaFetchSource source(setup.bsa, machine, limits);
    TimingUnit unit;
    std::vector<std::uint64_t> got;
    while (source.next(unit))
        got.insert(got.end(), unit.memAddrs,
                   unit.memAddrs + unit.memCount);
    EXPECT_EQ(got, want);
}

TEST(BsaSource, PerfectPredictionNeverMispredicts)
{
    TestRig setup(kBranchy);
    MachineConfig machine;
    machine.perfectPrediction = true;
    BsaFetchSource source(setup.bsa, machine, Interp::Limits{});
    TimingUnit unit;
    while (source.next(unit))
        EXPECT_FALSE(unit.redirect.mispredicted);
    EXPECT_EQ(source.mispredicts(), 0u);
}

TEST(BsaSource, RealPredictorMispredictsAndClassifies)
{
    TestRig setup(kBranchy);
    MachineConfig machine;
    BsaFetchSource source(setup.bsa, machine, Interp::Limits{});
    TimingUnit unit;
    std::uint64_t fault_units = 0, trap_units = 0;
    while (source.next(unit)) {
        if (!unit.redirect.mispredicted)
            continue;
        if (unit.redirect.isFault) {
            ++fault_units;
            // Fault-style: the resolving op lives in the wrong block
            // and really is a fault operation.
            ASSERT_TRUE(unit.redirect.resolveInWrongBlock);
            ASSERT_NE(unit.redirect.wrongOps, nullptr);
            ASSERT_LT(unit.redirect.resolveOpIdx,
                      unit.redirect.wrongOpCount);
            EXPECT_NE(
                unit.redirect.wrongOps[unit.redirect.resolveOpIdx]
                        .flags &
                    opIsFault,
                0);
        } else {
            ++trap_units;
        }
    }
    EXPECT_EQ(source.mispredicts(),
              source.trapMispredicts() + source.faultMispredicts());
    EXPECT_GT(trap_units, 0u);
    EXPECT_EQ(source.trapMispredicts(), trap_units);
    EXPECT_EQ(source.faultMispredicts(), fault_units);
    const double acc =
        1.0 - double(source.mispredicts()) / double(source.predictions());
    EXPECT_GT(acc, 0.5);
    EXPECT_LT(acc, 1.0);
}

TEST(BsaSource, DeterministicStream)
{
    TestRig setup(kBranchy);
    MachineConfig machine;
    for (int round = 0; round < 2; ++round) {
        static std::vector<std::uint64_t> first;
        BsaFetchSource source(setup.bsa, machine, Interp::Limits{});
        TimingUnit unit;
        std::vector<std::uint64_t> pcs;
        while (source.next(unit))
            pcs.push_back(unit.pc);
        if (round == 0)
            first = pcs;
        else
            EXPECT_EQ(first, pcs);
    }
}

TEST(BsaSource, OpBudgetTruncationIsClean)
{
    WorkloadParams params;
    params.name = "trunc";
    params.seed = 11;
    params.numFuncs = 6;
    params.numLibFuncs = 1;
    params.itemsPerFunc = 6;
    const Module m = generateWorkload(params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);

    for (std::uint64_t budget : {1000u, 5000u, 50000u}) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        BsaFetchSource source(bsa, machine, limits);
        TimingUnit unit;
        std::uint64_t units = 0;
        while (source.next(unit))
            ++units;
        EXPECT_GT(units, 0u);
    }
}

TEST(BsaSource, ShallowCommitsArePossibleButBounded)
{
    // With a real predictor some committed blocks may be shallower
    // than the maximal variant (a compatible prediction commits);
    // they must still tile the stream (checked above) and not
    // dominate it.
    TestRig setup(kBranchy);
    MachineConfig machine;

    auto run_avg = [&](bool perfect) {
        machine.perfectPrediction = perfect;
        BsaFetchSource source(setup.bsa, machine, Interp::Limits{});
        TimingUnit unit;
        std::uint64_t units = 0, ops = 0;
        while (source.next(unit)) {
            ++units;
            ops += unit.opCount;
        }
        return double(ops) / double(units);
    };

    const double real_avg = run_avg(false);
    const double oracle_avg = run_avg(true);
    EXPECT_LE(real_avg, oracle_avg + 0.01);
    EXPECT_GT(real_avg, oracle_avg * 0.7);
}
