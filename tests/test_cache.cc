/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace bsisa;

TEST(Cache, ConfigGeometry)
{
    CacheConfig cfg{64 * 1024, 4, 64, false};
    EXPECT_EQ(cfg.numSets(), 256u);
    CacheConfig small{16 * 1024, 4, 64, false};
    EXPECT_EQ(small.numSets(), 64u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache({1024, 2, 64, false});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1038));  // same line
    EXPECT_FALSE(cache.access(0x1040));  // next line
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 8 sets of 64 B lines: three lines mapping to one set.
    Cache cache({1024, 2, 64, false});
    const std::uint64_t a = 0x0000, b = 0x0400, c = 0x0800;  // set 0
    EXPECT_FALSE(cache.access(a));
    EXPECT_FALSE(cache.access(b));
    EXPECT_TRUE(cache.access(a));   // refresh a; b is now LRU
    EXPECT_FALSE(cache.access(c));  // evicts b
    EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(b));  // b was evicted
}

TEST(Cache, PerfectAlwaysHits)
{
    Cache cache({1024, 2, 64, true});
    for (std::uint64_t addr = 0; addr < 1 << 20; addr += 4096)
        EXPECT_TRUE(cache.access(addr));
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(Cache, RangeAccessCountsLines)
{
    Cache cache({4096, 4, 64, false});
    // 64 bytes starting at line boundary: one line.
    EXPECT_EQ(cache.accessRange(0x2000, 64), 1u);
    // Same range again: hits.
    EXPECT_EQ(cache.accessRange(0x2000, 64), 0u);
    // 64 bytes straddling two lines.
    EXPECT_EQ(cache.accessRange(0x3020, 64), 2u);
    // Zero-length range still touches its line.
    EXPECT_EQ(cache.accessRange(0x5000, 0), 1u);
}

TEST(Cache, FlushInvalidates)
{
    Cache cache({1024, 2, 64, false});
    cache.access(0x100);
    EXPECT_TRUE(cache.access(0x100));
    cache.flush();
    EXPECT_FALSE(cache.access(0x100));
}

TEST(Cache, CapacityBehaviour)
{
    // A 1 KB cache cannot hold a 4 KB working set cycled repeatedly.
    Cache small({1024, 4, 64, false});
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t addr = 0; addr < 4096; addr += 64)
            small.access(addr);
    EXPECT_GT(small.stats().missRate(), 0.5);

    // The same working set fits a 16 KB cache after the first pass.
    Cache big({16 * 1024, 4, 64, false});
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t addr = 0; addr < 4096; addr += 64)
            big.access(addr);
    EXPECT_LT(big.stats().missRate(), 0.3);
}
