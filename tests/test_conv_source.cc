/**
 * @file
 * Direct tests of the conventional fetch source and the shared
 * pipeline's accounting: unit/op conservation, misprediction kinds
 * (trap direction, indirect target, return), redirect plumbing, and
 * the fetch-stall breakdown.
 */

#include <gtest/gtest.h>

#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/conv_source.hh"
#include "sim/pipeline.hh"
#include "support/rng.hh"
#include "workloads/synth.hh"

using namespace bsisa;

namespace
{

Module
makeProgram(const char *src, std::uint64_t seed = 7)
{
    Module m = compileBlockCOrDie(src);
    Rng rng(seed);
    for (auto &word : m.data)
        word = rng.nextBelow(8);
    return m;
}

const char *kMixed = R"(
    var d[32];
    fn pick(s) {
        var r = 0;
        switch (s & 3) {
            case 0: { r = 1; }
            case 1: { r = 2; }
            case 2: { r = 3; }
            case 3: { r = 5; }
        }
        return r;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 300; i = i + 1) {
            if (d[i & 31] & 1) { acc = acc + pick(i); }
            else { acc = acc + pick(acc); }
            acc = acc & 0xffff;
        }
        return acc;
    }
)";

} // namespace

TEST(ConvSource, EmitsEveryBlockExactlyOnce)
{
    const Module m = makeProgram(kMixed);
    Interp::Limits limits;

    std::uint64_t want_blocks = 0, want_ops = 0;
    {
        Interp interp(m, limits);
        interp.run();
        want_blocks = interp.dynBlocks();
        want_ops = interp.dynOps();
    }

    const ConvLayout layout(m);
    MachineConfig machine;
    ConvFetchSource source(m, layout, machine, limits);
    TimingUnit unit;
    std::uint64_t units = 0, ops = 0;
    while (source.next(unit)) {
        ++units;
        ops += unit.opCount;
        // The unit's byte size equals its op count times the op size.
        EXPECT_EQ(unit.bytes, unit.opCount * opBytes);
        EXPECT_FALSE(unit.skipIcache);
    }
    EXPECT_EQ(units, want_blocks);
    EXPECT_EQ(ops, want_ops);
}

TEST(ConvSource, RedirectsPointAtThePreviousTerminator)
{
    const Module m = makeProgram(kMixed);
    const ConvLayout layout(m);
    MachineConfig machine;
    ConvFetchSource source(m, layout, machine, Interp::Limits{});
    TimingUnit unit;
    std::size_t prev_ops = 0;
    std::uint64_t mispredicted_units = 0;
    while (source.next(unit)) {
        if (unit.redirect.mispredicted) {
            ++mispredicted_units;
            // Conventional mispredicts resolve at the PREVIOUS unit's
            // terminator, never inside a wrong block.
            EXPECT_FALSE(unit.redirect.resolveInWrongBlock);
            ASSERT_GT(prev_ops, 0u);
            EXPECT_EQ(unit.redirect.resolveOpIdx, prev_ops - 1);
        }
        prev_ops = unit.opCount;
    }
    EXPECT_GT(mispredicted_units, 0u);
    EXPECT_EQ(mispredicted_units, source.mispredicts());
}

TEST(ConvSource, IndirectJumpsArePredictedByLastTarget)
{
    // A switch whose selector cycles with period 4 settles into a
    // pattern the last-target BTB gets mostly wrong, while a constant
    // selector becomes perfectly predicted.
    const char *cycling = R"(
        fn main() {
            var acc = 0;
            for (var i = 0; i < 400; i = i + 1) {
                switch (i & 3) {
                    case 0: { acc = acc + 1; }
                    case 1: { acc = acc + 2; }
                    case 2: { acc = acc + 3; }
                    case 3: { acc = acc + 4; }
                }
            }
            return acc;
        }
    )";
    const char *constant = R"(
        fn main() {
            var acc = 0;
            for (var i = 0; i < 400; i = i + 1) {
                switch (0) {
                    case 0: { acc = acc + 1; }
                    case 1: { acc = acc + 2; }
                }
            }
            return acc;
        }
    )";
    MachineConfig machine;
    Interp::Limits limits;

    const Module mc = makeProgram(cycling);
    const SimResult rc =
        runConventional(mc, machine, limits);
    const Module ms = makeProgram(constant);
    const SimResult rs = runConventional(ms, machine, limits);

    // Cycling selector: nearly every ijmp misses under last-target.
    EXPECT_GT(rc.mispredicts, 300u);
    // Constant selector: almost never misses.
    EXPECT_LT(rs.mispredicts, 20u);
}

TEST(ConvSource, ReturnStackKeepsReturnsPredicted)
{
    const char *deep = R"(
        fn l3(a) { return a + 3; }
        fn l2(a) { return l3(a) + 2; }
        fn l1(a) { return l2(a) + 1; }
        fn main() {
            var acc = 0;
            for (var i = 0; i < 100; i = i + 1) { acc = acc + l1(i); }
            return acc;
        }
    )";
    const Module m = makeProgram(deep);
    MachineConfig machine;
    const SimResult r = runConventional(m, machine, Interp::Limits{});
    // Returns are RAS-predicted: 600 returns execute, so a broken RAS
    // would show hundreds of misses; warmup noise stays tiny.
    EXPECT_LT(r.mispredicts, 30u);
}

TEST(Pipeline, StallBreakdownAttributesCycles)
{
    // A generated workload gives a code footprint large enough to
    // thrash a deliberately tiny icache.
    WorkloadParams params;
    params.name = "stalls";
    params.seed = 3;
    params.numFuncs = 12;
    params.numLibFuncs = 2;
    params.itemsPerFunc = 8;
    const Module m = generateWorkload(params);
    MachineConfig machine;
    Interp::Limits limits;
    limits.maxOps = 200000;

    // Real predictor: redirect stalls must appear.
    const SimResult real = runConventional(m, machine, limits);
    EXPECT_GT(real.stallRedirect, 0u);

    // Perfect prediction: no redirect stalls at all.
    machine.perfectPrediction = true;
    const SimResult oracle = runConventional(m, machine, limits);
    EXPECT_EQ(oracle.stallRedirect, 0u);

    // Tiny icache: icache stalls grow sharply.
    machine.icache.sizeBytes = 1024;
    const SimResult cold = runConventional(m, machine, limits);
    EXPECT_GT(cold.stallIcache, oracle.stallIcache * 4 + 100);

    // Tiny window: window stalls appear.
    machine.icache.sizeBytes = 64 * 1024;
    machine.windowUnits = 2;
    machine.windowOps = 24;
    const SimResult narrow = runConventional(m, machine, limits);
    EXPECT_GT(narrow.stallWindow, 0u);
}

TEST(Pipeline, StallsAreBoundedByCycles)
{
    const Module m = makeProgram(kMixed);
    MachineConfig machine;
    const SimResult r = runConventional(m, machine, Interp::Limits{});
    EXPECT_LE(r.stallRedirect + r.stallWindow + r.stallIcache,
              r.cycles);
}
