/**
 * @file
 * Tests of the pre-decoded program metadata and the zero-copy replay
 * hot path built on it.
 *
 * Three properties are pinned down:
 *   1. DecodedOp/DecodedUnit records agree field-for-field with the
 *      Operation properties they cache (including the fault masks of
 *      atomic blocks).
 *   2. Every timing model produces a bit-identical SimResult whether
 *      the committed stream comes from a live interpreter or from a
 *      zero-copy trace replay, across all eight benchmarks.
 *   3. The replay hot path is allocation-free in the steady state: a
 *      4x-longer replay performs exactly as many heap allocations as
 *      a short one (all allocations are construction/warmup), i.e.
 *      zero allocations per committed block.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>

#include <unistd.h>

#include "cache/trace_cache.hh"
#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "sim/bsa_source.hh"
#include "sim/conv_source.hh"
#include "sim/decoded.hh"
#include "sim/pipeline.hh"
#include "sim/trace_store.hh"
#include "workloads/specmix.hh"

namespace
{

/** Global heap-allocation counter for the steady-state guard. */
std::atomic<std::uint64_t> allocCount{0};

} // namespace

void *
operator new(std::size_t size)
{
    allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

using namespace bsisa;

namespace
{

Interp::Limits
testLimits(const SpecBenchmark &bench)
{
    Interp::Limits limits;
    limits.maxOps = bench.scaledBudget(4000);
    return limits;
}

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
}

void
expectSameSim(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.retiredUnits, b.retiredUnits);
    EXPECT_EQ(a.wrongPathOps, b.wrongPathOps);
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.trapMispredicts, b.trapMispredicts);
    EXPECT_EQ(a.faultMispredicts, b.faultMispredicts);
    EXPECT_EQ(a.cascadeHops, b.cascadeHops);
    EXPECT_EQ(a.stallRedirect, b.stallRedirect);
    EXPECT_EQ(a.stallWindow, b.stallWindow);
    EXPECT_EQ(a.stallIcache, b.stallIcache);
    EXPECT_EQ(a.peakWindowUnits, b.peakWindowUnits);
    EXPECT_EQ(a.peakWindowOps, b.peakWindowOps);
    expectSameCacheStats(a.icache, b.icache);
    expectSameCacheStats(a.dcache, b.dcache);
}

/** Check one decoded op against the Operation it caches. */
void
expectDecodesOp(const DecodedOp &dop, const Operation &op)
{
    const unsigned nsrc = numSources(op.op);
    EXPECT_EQ(dop.srcCount, nsrc);
    EXPECT_EQ(dop.src1, nsrc >= 1 ? op.src1 : regZero);
    EXPECT_EQ(dop.src2, nsrc >= 2 ? op.src2 : regZero);
    EXPECT_EQ(dop.dst, hasDest(op.op) ? op.dst : regDump);
    EXPECT_EQ(dop.latency, op.latency());
    EXPECT_EQ((dop.flags & opIsMem) != 0,
              op.op == Opcode::Ld || op.op == Opcode::St);
    EXPECT_EQ((dop.flags & opIsLoad) != 0, op.op == Opcode::Ld);
    EXPECT_EQ((dop.flags & opIsFault) != 0, op.op == Opcode::Fault);
}

} // namespace

TEST(Decoded, ModuleRecordsMatchOperations)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const DecodedProgram decoded = DecodedProgram::forModule(m);

    for (FuncId f = 0; f < m.functions.size(); ++f) {
        const Function &fn = m.functions[f];
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            const Block &blk = fn.blocks[b];
            const DecodedUnit &du = decoded.unit(f, b);
            ASSERT_EQ(du.opCount, blk.ops.size());
            EXPECT_EQ(du.sizeBytes, blk.ops.size() * opBytes);
            const DecodedOp *dops = decoded.ops(du);
            for (std::size_t i = 0; i < blk.ops.size(); ++i)
                expectDecodesOp(dops[i], blk.ops[i]);
        }
    }
}

TEST(Decoded, BsaRecordsMatchAtomicBlocks)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[1].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);
    const DecodedProgram decoded = DecodedProgram::forBsa(bsa);

    bool saw_fault = false;
    for (AtomicBlockId id = 0; id < bsa.blocks.size(); ++id) {
        const AtomicBlock &blk = bsa.blocks[id];
        const DecodedUnit &du = decoded.unit(id);
        ASSERT_EQ(du.opCount, blk.ops.size());
        EXPECT_EQ(du.sizeBytes, blk.sizeBytes());
        EXPECT_EQ(du.faultCount, blk.numFaults);
        // One trap merge edge per fault op, in constituent order.
        EXPECT_EQ(std::popcount(du.trapMask), int(blk.numFaults));
        const DecodedOp *dops = decoded.ops(du);
        const DecodedFault *faults = decoded.faults(du);
        for (std::size_t i = 0; i < blk.ops.size(); ++i)
            expectDecodesOp(dops[i], blk.ops[i]);
        for (unsigned k = 0; k < du.faultCount; ++k) {
            saw_fault = true;
            ASSERT_LT(faults[k].opIdx, du.opCount);
            EXPECT_NE(dops[faults[k].opIdx].flags & opIsFault, 0);
            EXPECT_EQ(faults[k].target,
                      blk.ops[faults[k].opIdx].target0);
            // dirMask bit k is the merged direction of trap k.
            EXPECT_EQ((du.dirMask >> k) & 1,
                      blk.dirs[k] ? 1u : 0u);
        }
    }
    EXPECT_TRUE(saw_fault);  // enlargement produced fault merges
}

TEST(Decoded, ReplayMatchesInterpOnAllBenchmarks)
{
    for (const SpecBenchmark &bench : specint95Suite()) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        const Interp::Limits limits = testLimits(bench);
        const ExecTrace trace = captureTrace(m, limits);
        MachineConfig machine;

        expectSameSim(runConventional(m, machine, limits),
                      runConventional(m, machine, trace));

        BsaModule bsa =
            enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
        layoutBsaModule(bsa);
        expectSameSim(runBlockStructured(bsa, machine, limits),
                      runBlockStructured(bsa, machine, trace));

        const TraceCacheConfig tc;
        const TraceCacheResult live =
            runTraceCache(m, machine, tc, limits);
        const TraceCacheResult replay =
            runTraceCache(m, machine, tc, trace);
        expectSameSim(live.sim, replay.sim);
        EXPECT_EQ(live.traceHits, replay.traceHits);
        EXPECT_EQ(live.traceMisses, replay.traceMisses);
    }
}

TEST(Decoded, ReplaySteadyStateIsAllocationFree)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);

    Interp::Limits short_lim, long_lim;
    short_lim.maxOps = suite[0].scaledBudget(4000);
    long_lim.maxOps = short_lim.maxOps * 4;
    const ExecTrace short_trace = captureTrace(m, short_lim);
    const ExecTrace long_trace = captureTrace(m, long_lim);
    ASSERT_GT(long_trace.eventCount, short_trace.eventCount);

    MachineConfig machine;
    const ConvLayout layout(m);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    // Allocations during simulatePipeline only: sources (and their
    // decoded programs) are constructed outside the measured region,
    // so any remaining count is SchedState warmup — identical for
    // both trace lengths iff the per-block path never allocates.
    auto conv_allocs = [&](const ExecTrace &t) {
        ConvFetchSource source(m, layout, machine, t);
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        simulatePipeline(source, machine);
        return allocCount.load(std::memory_order_relaxed) - before;
    };
    auto bsa_allocs = [&](const ExecTrace &t) {
        BsaFetchSource source(bsa, machine, t);
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        simulatePipeline(source, machine);
        return allocCount.load(std::memory_order_relaxed) - before;
    };

    EXPECT_EQ(conv_allocs(long_trace), conv_allocs(short_trace));
    EXPECT_EQ(bsa_allocs(long_trace), bsa_allocs(short_trace));
}

TEST(Decoded, SharedDecodeConstructionCopiesNothing)
{
    // Lockstep batches build the DecodedProgram once and hand it to
    // every lane's source; the shared-decode constructors must borrow
    // it, not copy it.  A borrowed decode skips every decode-table
    // allocation, so the shared ctor allocates strictly less than the
    // owning ctor.
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    Interp::Limits limits;
    limits.maxOps = suite[0].scaledBudget(4000);
    const ExecTrace trace = captureTrace(m, limits);
    MachineConfig machine;
    const ConvLayout layout(m);
    const DecodedProgram decoded = DecodedProgram::forModule(m);

    auto conv_ctor_allocs = [&](bool shared) {
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        if (shared) {
            ConvFetchSource source(m, layout, machine, trace, decoded);
        } else {
            ConvFetchSource source(m, layout, machine, trace);
        }
        return allocCount.load(std::memory_order_relaxed) - before;
    };
    EXPECT_LT(conv_ctor_allocs(true), conv_ctor_allocs(false));

    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);
    const DecodedProgram bsaDecoded = DecodedProgram::forBsa(bsa);
    auto bsa_ctor_allocs = [&](bool shared) {
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        if (shared) {
            BsaFetchSource source(bsa, machine, trace, bsaDecoded);
        } else {
            BsaFetchSource source(bsa, machine, trace);
        }
        return allocCount.load(std::memory_order_relaxed) - before;
    };
    EXPECT_LT(bsa_ctor_allocs(true), bsa_ctor_allocs(false));
}

TEST(Decoded, LockstepSteadyStateIsAllocationFree)
{
    // The batched walk shares one decode and one trace mapping across
    // all lanes, and its per-event path must stay allocation-free: a
    // 4x-longer replay of the same batch performs exactly as many
    // heap allocations as a short one (all setup), i.e. zero
    // allocations per event per lane.
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);

    Interp::Limits short_lim, long_lim;
    short_lim.maxOps = suite[0].scaledBudget(4000);
    long_lim.maxOps = short_lim.maxOps * 4;
    const ExecTrace short_trace = captureTrace(m, short_lim);
    const ExecTrace long_trace = captureTrace(m, long_lim);
    ASSERT_GT(long_trace.eventCount, short_trace.eventCount);

    std::vector<MachineConfig> grid(4);
    grid[1].issueWidth = 8;
    grid[2].perfectPrediction = true;
    grid[3].icache.sizeBytes = 16 * 1024;

    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    auto conv_allocs = [&](const ExecTrace &t) {
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        runConventionalBatch(m, grid, t);
        return allocCount.load(std::memory_order_relaxed) - before;
    };
    auto bsa_allocs = [&](const ExecTrace &t) {
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        runBlockStructuredBatch(bsa, grid, t);
        return allocCount.load(std::memory_order_relaxed) - before;
    };

    EXPECT_EQ(conv_allocs(long_trace), conv_allocs(short_trace));
    EXPECT_EQ(bsa_allocs(long_trace), bsa_allocs(short_trace));
}

TEST(Decoded, MmapReplaySteadyStateIsAllocationFree)
{
    // Same guard as above, but the committed streams come from the
    // persistent store: the event array is decoded at open and the
    // address pool is a zero-copy span into the mapped file, so the
    // per-block path must stay allocation-free over mmap-ed memory
    // exactly as it does over captured vectors.
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t digest = moduleDigest(m);

    Interp::Limits short_lim, long_lim;
    short_lim.maxOps = suite[0].scaledBudget(4000);
    long_lim.maxOps = short_lim.maxOps * 4;

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("bsisa-test-decoded-" + std::to_string(::getpid())))
            .string();
    const TraceStore store(dir);
    (void)store.load(m, digest, short_lim);  // cold: write entries
    (void)store.load(m, digest, long_lim);
    const ExecTrace short_trace = store.load(m, digest, short_lim);
    const ExecTrace long_trace = store.load(m, digest, long_lim);
    ASSERT_TRUE(short_trace.mapped());
    ASSERT_TRUE(long_trace.mapped());
    ASSERT_GT(long_trace.eventCount, short_trace.eventCount);

    MachineConfig machine;
    const ConvLayout layout(m);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    auto conv_allocs = [&](const ExecTrace &t) {
        ConvFetchSource source(m, layout, machine, t);
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        simulatePipeline(source, machine);
        return allocCount.load(std::memory_order_relaxed) - before;
    };
    auto bsa_allocs = [&](const ExecTrace &t) {
        BsaFetchSource source(bsa, machine, t);
        const std::uint64_t before =
            allocCount.load(std::memory_order_relaxed);
        simulatePipeline(source, machine);
        return allocCount.load(std::memory_order_relaxed) - before;
    };

    EXPECT_EQ(conv_allocs(long_trace), conv_allocs(short_trace));
    EXPECT_EQ(bsa_allocs(long_trace), bsa_allocs(short_trace));

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}
