/**
 * @file
 * Unit tests for the block enlargement pass: the figure-1 BC/BD shape,
 * each termination condition, fault polarity/targets, successor
 * counts, and code-expansion accounting.
 */

#include <gtest/gtest.h>

#include "core/enlarge.hh"
#include "frontend/compile.hh"
#include "ir/verifier.hh"

using namespace bsisa;

namespace
{

/** Count fault operations in a block. */
unsigned
faultCount(const AtomicBlock &blk)
{
    unsigned n = 0;
    for (const auto &op : blk.ops)
        n += op.op == Opcode::Fault;
    return n;
}

/** The paper's figure-1 CFG: A -> (B | E); B -> (C | D); C,D -> E. */
Module
figure1Module()
{
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    for (int i = 0; i < 5; ++i)
        f.newBlock();
    // Registers: all architectural (post-RA form).
    const RegNum c1 = 20, c2 = 21, t = 22;
    // A: fifteen ops ending in a trap to B / E.  A is deliberately too
    // large to merge with anything (15 + 2 > 16), so B and E become
    // enlargement heads of their own, exactly like figure 1 where the
    // interesting merging happens at B.
    f.blocks[0].ops = {makeMovI(c1, 1), makeMovI(c2, 0)};
    for (int i = 0; i < 12; ++i)
        f.blocks[0].ops.push_back(makeMovI(t, i));
    f.blocks[0].ops.push_back(makeTrap(c1, 1, 4));
    // B: computes its own trap condition (the paper's key case).
    f.blocks[1].ops = {makeBinI(Opcode::AddI, t, c2, 1),
                       makeTrap(t, 2, 3)};
    // C and D: a couple of ops then jump to E.
    f.blocks[2].ops = {makeMovI(t, 7), makeJmp(4)};
    f.blocks[3].ops = {makeMovI(t, 8), makeJmp(4)};
    // E: halt.
    f.blocks[4].ops = {makeHalt()};
    return m;
}

} // namespace

TEST(Enlarge, Figure1ProducesBCAndBD)
{
    const Module m = figure1Module();
    EnlargeConfig config;
    const BsaModule bsa = enlargeModule(m, config);

    // Head B (block 1) must have variants covering B+C and B+D.
    const HeadTrie *trie = bsa.findTrie(0, 1);
    ASSERT_NE(trie, nullptr);
    bool saw_bc = false, saw_bd = false;
    for (int n : trie->emitted) {
        const AtomicBlock &blk = bsa.blocks[trie->nodes[n].block];
        if (blk.bbs.size() >= 2 && blk.bbs[0] == 1 && blk.bbs[1] == 2)
            saw_bc = true;
        if (blk.bbs.size() >= 2 && blk.bbs[0] == 1 && blk.bbs[1] == 3)
            saw_bd = true;
    }
    EXPECT_TRUE(saw_bc);
    EXPECT_TRUE(saw_bd);
}

TEST(Enlarge, FaultPolarityMatchesPaper)
{
    const Module m = figure1Module();
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    const HeadTrie &trie = bsa.trie(0, 1);
    for (int n : trie.emitted) {
        const AtomicBlock &blk = bsa.blocks[trie.nodes[n].block];
        if (blk.bbs.size() < 2 || blk.bbs[0] != 1)
            continue;
        ASSERT_EQ(faultCount(blk), 1u);
        const Operation *fault = nullptr;
        for (const auto &op : blk.ops)
            if (op.op == Opcode::Fault)
                fault = &op;
        ASSERT_NE(fault, nullptr);
        if (blk.bbs[1] == 2) {
            // Merged with the TAKEN target: complemented condition.
            EXPECT_EQ(fault->imm, 1);
        } else {
            // Merged with the fall-through: same condition.
            EXPECT_EQ(fault->imm, 0);
        }
        // The fault must point at the sibling variant (the enlarged
        // block that begins with B and continues the other way).
        const AtomicBlock &target = bsa.blocks[fault->target0];
        EXPECT_EQ(target.bbs.front(), 1u);
        EXPECT_NE(target.bbs[1], blk.bbs[1]);
    }
}

TEST(Enlarge, Condition1SizeLimit)
{
    Module m = figure1Module();
    splitOversizedBlocks(m, 3);  // satisfy the pass precondition
    EnlargeConfig tiny;
    tiny.maxOps = 3;  // B(2) + C(2) = 4 > 3: no BC/BD merging
    const BsaModule bsa = enlargeModule(m, tiny);
    for (const auto &blk : bsa.blocks)
        EXPECT_LE(blk.ops.size(), 3u);
    const HeadTrie &trie = bsa.trie(0, 1);
    EXPECT_EQ(trie.emitted.size(), 1u);  // B alone
}

TEST(Enlarge, Condition2FaultLimit)
{
    // A chain of conditional diamonds would accumulate faults; with
    // maxFaults = 0 no trap merging may happen at all.
    const std::string src = R"(
        var d[16];
        fn main() {
            var x = 0;
            if (d[0]) { x = 1; } else { x = 2; }
            if (d[1]) { x = x + 1; } else { x = x + 2; }
            if (d[2]) { x = x + 3; } else { x = x + 4; }
            return x;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    EnlargeConfig config;
    config.maxFaults = 0;
    const BsaModule bsa = enlargeModule(m, config);
    for (const auto &blk : bsa.blocks)
        EXPECT_EQ(faultCount(blk), 0u);

    config.maxFaults = 2;
    const BsaModule bsa2 = enlargeModule(m, config);
    unsigned max_faults = 0;
    for (const auto &blk : bsa2.blocks)
        max_faults = std::max(max_faults, faultCount(blk));
    EXPECT_LE(max_faults, 2u);
    EXPECT_GT(max_faults, 0u);
}

TEST(Enlarge, Condition3NoMergeAcrossCalls)
{
    const std::string src = R"(
        fn leaf(x) { return x + 1; }
        fn main() {
            var a = leaf(1);
            var b = leaf(a);
            return a + b;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    // No atomic block may span a call: a Call can only be the last op.
    for (const auto &blk : bsa.blocks)
        for (std::size_t i = 0; i + 1 < blk.ops.size(); ++i)
            EXPECT_NE(blk.ops[i].op, Opcode::Call);
}

TEST(Enlarge, Condition4NoLoopIterationMerging)
{
    const std::string src = R"(
        fn main() {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) { s = s + i; }
            return s;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    // No atomic block may contain the same basic block twice (that
    // would be two iterations merged).
    for (const auto &blk : bsa.blocks) {
        std::set<BlockId> unique(blk.bbs.begin(), blk.bbs.end());
        EXPECT_EQ(unique.size(), blk.bbs.size());
    }
}

TEST(Enlarge, Condition5LibraryNotEnlarged)
{
    const std::string src = R"(
        library fn lib(x) {
            var r = 0;
            if (x) { r = 1; } else { r = 2; }
            return r + x;
        }
        fn app(x) {
            var r = 0;
            if (x) { r = 1; } else { r = 2; }
            return r + x;
        }
        fn main() { return lib(1) + app(0); }
    )";
    const Module m = compileBlockCOrDie(src);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    const FuncId lib_id = m.findFunction("lib")->id;
    const FuncId app_id = m.findFunction("app")->id;
    unsigned lib_faults = 0, app_faults = 0;
    for (const auto &blk : bsa.blocks) {
        if (blk.func == lib_id)
            lib_faults += faultCount(blk);
        if (blk.func == app_id)
            app_faults += faultCount(blk);
    }
    EXPECT_EQ(lib_faults, 0u);
    EXPECT_GT(app_faults, 0u);
}

TEST(Enlarge, DisabledProducesOneBlockPerBasicBlock)
{
    const Module m = figure1Module();
    EnlargeConfig off;
    off.enabled = false;
    const BsaModule bsa = enlargeModule(m, off);
    for (const auto &blk : bsa.blocks) {
        EXPECT_EQ(blk.bbs.size(), 1u);
        EXPECT_EQ(faultCount(blk), 0u);
    }
}

TEST(Enlarge, SuccessorCountsWithinEight)
{
    const std::string src = R"(
        var d[64];
        fn main() {
            var x = 0;
            for (var i = 0; i < 8; i = i + 1) {
                if (d[i]) { x = x + 1; } else { x = x + 2; }
                if (d[i + 8]) { x = x * 2; } else { x = x - 1; }
            }
            return x;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    for (const auto &blk : bsa.blocks) {
        EXPECT_LE(blk.succBits, 3u);
        EXPECT_EQ(blk.succBits, blk.terminator().succBits);
    }
    // Variant tries respect the per-head cap.
    for (const auto &bf : bsa.funcs)
        for (const auto &[head, trie] : bf.tries)
            EXPECT_LE(trie.emitted.size(), 4u);
}

TEST(Enlarge, ThruMergesDeleteJumps)
{
    // if/else join: the join block is reached by jmp from both arms;
    // enlargement should swallow unconditional jumps where size
    // permits, so some emitted block must contain ops from 2+ bbs with
    // no interior jmp.
    const std::string src = R"(
        var d[4];
        fn main() {
            var x = d[0];
            var y = x + 1;
            if (x) { y = y * 3; } else { y = y * 5; }
            var z = y + 7;
            return z;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    EnlargeStats stats;
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr,
                                        &stats);
    EXPECT_GT(stats.thruMerges, 0u);
    for (const auto &blk : bsa.blocks)
        for (std::size_t i = 0; i + 1 < blk.ops.size(); ++i)
            EXPECT_NE(blk.ops[i].op, Opcode::Jmp);
}

TEST(Enlarge, CodeExpansionReported)
{
    const std::string src = R"(
        var d[16];
        fn main() {
            var x = 0;
            for (var i = 0; i < 4; i = i + 1) {
                if (d[i]) { x = x + i; } else { x = x - i; }
            }
            return x;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    EnlargeStats stats;
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr,
                                        &stats);
    EXPECT_EQ(stats.atomicBlocks, bsa.blocks.size());
    EXPECT_EQ(stats.bsaOps, bsa.numOps());
    EXPECT_GE(stats.expansion(), 1.0);
    EXPECT_EQ(bsa.codeBytes(), bsa.numOps() * opBytes);
}

TEST(Enlarge, ProfileGuidedFilterReducesDuplication)
{
    const std::string src = R"(
        var d[64];
        fn main() {
            var x = 0;
            for (var i = 0; i < 32; i = i + 1) {
                if (d[i] & 1) { x = x + 1; } else { x = x + 2; }
                if (i < 31) { x = x * 2; } else { x = x - 1; }
            }
            return x;
        }
    )";
    Module m = compileBlockCOrDie(src);
    // Make d[] alternate so the first branch is perfectly unbiased.
    for (int i = 0; i < 32; ++i)
        m.data[i] = i & 1;
    const ProfileData profile = collectProfile(m, 1u << 20);
    EXPECT_GT(profile.size(), 0u);

    EnlargeStats plain_stats, guided_stats;
    enlargeModule(m, EnlargeConfig{}, nullptr, &plain_stats);
    EnlargeConfig guided;
    guided.minMergeBias = 0.9;
    enlargeModule(m, guided, &profile, &guided_stats);
    EXPECT_LT(guided_stats.bsaOps, plain_stats.bsaOps);
}

TEST(Enlarge, SplitOversizedBlocks)
{
    // A straight-line main with ~40 ops compiles to one huge block.
    std::string src = "fn main() { var a = 1;";
    for (int i = 0; i < 40; ++i)
        src += " a = a + " + std::to_string(i) + ";";
    src += " return a; }";
    CompileOptions options;
    options.optimize = false;  // keep the 40-op straight line intact
    options.maxBlockOps = 0;   // no splitting yet
    Module m = compileBlockCOrDie(src, options);
    const unsigned splits = splitOversizedBlocks(m, 16);
    EXPECT_GT(splits, 0u);
    EXPECT_TRUE(verifyModule(m).empty());
    for (const auto &f : m.functions)
        for (const auto &blk : f.blocks)
            EXPECT_LE(blk.ops.size(), 16u);
}

TEST(Enlarge, BlockOriginsAreConsistent)
{
    const Module m = figure1Module();
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    ASSERT_EQ(bsa.origin.size(), bsa.blocks.size());
    for (AtomicBlockId id = 0; id < bsa.blocks.size(); ++id) {
        const BlockOrigin &org = bsa.origin[id];
        const HeadTrie &trie = bsa.trie(org.func, org.head);
        EXPECT_EQ(trie.nodes[org.node].block, id);
        EXPECT_EQ(bsa.blocks[id].bbs.front(), org.head);
    }
}
