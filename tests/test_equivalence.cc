/**
 * @file
 * The central correctness property of the whole toolchain: a block-
 * structured program produced by enlargement is architecturally
 * equivalent to the conventional program it came from, for EVERY
 * legal fetch policy.
 *
 * The adversarial policy picks random variants at every head, so wrong
 * blocks are constantly fetched and must fault their way to the right
 * ones without corrupting state.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/bsa_interp.hh"
#include "sim/interp.hh"
#include "sim/trace.hh"
#include "cache/trace_cache.hh"
#include "support/rng.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

struct GoldenRun
{
    std::uint64_t exit;
    std::uint64_t checksum;
    std::uint64_t blocks;
};

GoldenRun
runConventional(const Module &m)
{
    Interp interp(m);
    interp.run();
    EXPECT_TRUE(interp.halted());
    return {interp.exitValue(), interp.memChecksum(),
            interp.dynBlocks()};
}

void
expectBsaMatches(const Module &m, const BsaModule &bsa,
                 const GoldenRun &want, VariantPolicy policy,
                 const char *what)
{
    BsaInterp interp(bsa, std::move(policy));
    interp.run();
    EXPECT_TRUE(interp.halted()) << what;
    EXPECT_EQ(interp.exitValue(), want.exit) << what;
    EXPECT_EQ(interp.memChecksum(), want.checksum) << what;
    (void)m;
}

std::string
randomWorkload(Rng &rng)
{
    std::ostringstream os;
    os << "var d[32];\nvar out[32];\n";
    os << "library fn libmix(a) { if (a & 1) { return a * 3; }"
          " return a + 7; }\n";
    const int helpers = 1 + int(rng.nextBelow(3));
    for (int h = 0; h < helpers; ++h) {
        os << "fn step" << h << "(x, i) {\n";
        os << "  var t = x;\n";
        if (rng.chance(0.7)) {
            os << "  if (d[i & 31] " << (rng.chance(0.5) ? "&" : "<")
               << " " << (1 + rng.nextBelow(3))
               << ") { t = t * 2 + 1; } else { t = t + 3; }\n";
        }
        if (rng.chance(0.5)) {
            os << "  switch (t & 3) { case 0: { t = t + i; }"
                  " case 1: { t = t ^ 5; } case 2: { t = t - 2; }"
                  " case 3: { t = libmix(t); } }\n";
        }
        if (rng.chance(0.5)) {
            os << "  for (var k = 0; k < " << (1 + rng.nextBelow(4))
               << "; k = k + 1) { t = t + d[(t + k) & 31]; }\n";
        }
        os << "  out[i & 31] = t;\n  return t;\n}\n";
    }
    os << "fn main() {\n  var acc = 0;\n";
    os << "  for (var i = 0; i < 40; i = i + 1) {\n";
    for (int h = 0; h < helpers; ++h) {
        if (rng.chance(0.8))
            os << "    acc = acc + step" << h << "(acc + i, i);\n";
    }
    os << "    acc = acc & 0xffffff;\n  }\n";
    os << "  return acc;\n}\n";
    return os.str();
}

Module
compileWithData(const std::string &src, Rng &rng)
{
    Module m = compileBlockCOrDie(src);
    for (std::size_t i = 0; i < m.data.size(); ++i)
        m.data[i] = rng.nextBelow(16);
    return m;
}

} // namespace

TEST(Equivalence, SimpleProgramAllPolicies)
{
    const std::string src = R"(
        var d[8];
        fn main() {
            var x = 0;
            for (var i = 0; i < 16; i = i + 1) {
                if (d[i & 7] < 2) { x = x + i; } else { x = x * 2; }
            }
            return x;
        }
    )";
    Rng rng(3);
    const Module m = compileWithData(src, rng);
    const GoldenRun want = runConventional(m);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});

    expectBsaMatches(m, bsa, want, firstVariantPolicy(), "first");
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        expectBsaMatches(m, bsa, want, randomVariantPolicy(seed),
                         "random");
    }
}

TEST(Equivalence, SuppressedWorkIsCounted)
{
    const std::string src = R"(
        var d[8];
        fn main() {
            var x = 0;
            for (var i = 0; i < 64; i = i + 1) {
                if (d[i & 7]) { x = x + 1; } else { x = x + 2; }
            }
            return x;
        }
    )";
    Rng rng(17);
    const Module m = compileWithData(src, rng);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    BsaInterp interp(bsa, randomVariantPolicy(99));
    interp.run();
    EXPECT_TRUE(interp.halted());
    // A random policy on a data-dependent branch must fault sometimes.
    EXPECT_GT(interp.suppressedBlocks(), 0u);
    EXPECT_GT(interp.suppressedOps(), 0u);
    EXPECT_GT(interp.committedBlocks(), 0u);
}

TEST(Equivalence, DegenerateBsaMatches)
{
    const std::string src = R"(
        fn f(a) { if (a < 3) { return a; } return a * 2; }
        fn main() {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) { s = s + f(i); }
            return s;
        }
    )";
    Rng rng(5);
    const Module m = compileWithData(src, rng);
    const GoldenRun want = runConventional(m);
    EnlargeConfig off;
    off.enabled = false;
    const BsaModule bsa = enlargeModule(m, off);
    expectBsaMatches(m, bsa, want, firstVariantPolicy(), "degenerate");
}

class EquivalencePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EquivalencePropertyTest, AdversarialFetchMatchesConventional)
{
    Rng rng(40000 + GetParam());
    const std::string src = randomWorkload(rng);
    const Module m = compileWithData(src, rng);
    const GoldenRun want = runConventional(m);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});

    expectBsaMatches(m, bsa, want, firstVariantPolicy(), src.c_str());
    expectBsaMatches(m, bsa, want,
                     randomVariantPolicy(GetParam() * 31 + 1),
                     src.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalencePropertyTest,
                         ::testing::Range(0, 30));

TEST(Equivalence, ProfileGuidedVariantStillCorrect)
{
    Rng rng(123);
    const std::string src = randomWorkload(rng);
    const Module m = compileWithData(src, rng);
    const GoldenRun want = runConventional(m);
    const ProfileData profile = collectProfile(m, 1u << 22);
    EnlargeConfig guided;
    guided.minMergeBias = 0.8;
    const BsaModule bsa = enlargeModule(m, guided, &profile);
    expectBsaMatches(m, bsa, want, randomVariantPolicy(7), "guided");
}

TEST(Equivalence, LiftedTerminationConditionsStillCorrect)
{
    // Ablation configurations (merging across loop back edges and
    // into library code) must remain architecturally correct even
    // under adversarial fetch.
    Rng rng(777);
    const std::string src = randomWorkload(rng);
    const Module m = compileWithData(src, rng);
    const GoldenRun want = runConventional(m);

    EnlargeConfig lifted;
    lifted.mergeAcrossBackEdges = true;
    lifted.enlargeLibraryFunctions = true;
    const BsaModule bsa = enlargeModule(m, lifted);
    expectBsaMatches(m, bsa, want, firstVariantPolicy(), "lifted/first");
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        expectBsaMatches(m, bsa, want, randomVariantPolicy(seed + 50),
                         "lifted/random");
    }
}

TEST(Equivalence, SmallIssueWidthStillCorrect)
{
    Rng rng(321);
    const std::string src = randomWorkload(rng);
    CompileOptions options;
    options.maxBlockOps = 8;
    Module m = compileBlockCOrDie(src, options);
    for (std::size_t i = 0; i < m.data.size(); ++i)
        m.data[i] = rng.nextBelow(16);
    const GoldenRun want = runConventional(m);
    EnlargeConfig narrow;
    narrow.maxOps = 8;
    const BsaModule bsa = enlargeModule(m, narrow);
    for (const auto &blk : bsa.blocks)
        EXPECT_LE(blk.ops.size(), 8u);
    expectBsaMatches(m, bsa, want, randomVariantPolicy(11), "narrow");
}

// The timing models never touch architectural state, but each one
// independently accounts every committed operation — so committed-op
// agreement across the full (benchmark x fetch model x timing model)
// matrix is the cheap, exhaustive cross-check that the out-of-order
// backend consumes the exact stream the abstract model does.
TEST(Equivalence, TimingModelAgreementMatrix)
{
    const auto suite = specint95Suite();
    ASSERT_EQ(suite.size(), 8u);

    MachineConfig abstractM;
    MachineConfig oooM;
    oooM.timingModel = TimingModel::Ooo;

    for (const SpecBenchmark &bench : suite) {
        const std::string &name = bench.params.name;
        const Module module = generateWorkload(bench.params);
        Interp::Limits limits;
        limits.maxOps = bench.scaledBudget(10000);
        const ExecTrace trace = captureTrace(module, limits);
        ASSERT_GT(trace.dynOps, 0u) << name;

        // Conventional machine: both models commit the functional
        // stream exactly; only the cycle accounting differs.
        const SimResult convA =
            runConventional(module, abstractM, trace);
        const SimResult convO = runConventional(module, oooM, trace);
        EXPECT_EQ(convA.retiredOps, trace.dynOps) << name;
        EXPECT_EQ(convO.retiredOps, trace.dynOps) << name;
        EXPECT_EQ(convA.retiredUnits, trace.eventCount) << name;
        EXPECT_EQ(convO.retiredUnits, convA.retiredUnits) << name;
        EXPECT_NE(convA.cycles, convO.cycles) << name;
        EXPECT_NE(convA.ipc(), convO.ipc()) << name;

        // Block-structured machine: merge deletions shrink the op
        // stream identically for both models.
        const BsaModule bsa = enlargeModule(module, EnlargeConfig{});
        const SimResult bsA = runBlockStructured(bsa, abstractM, trace);
        const SimResult bsO = runBlockStructured(bsa, oooM, trace);
        EXPECT_EQ(bsO.retiredOps, bsA.retiredOps) << name;
        EXPECT_EQ(bsO.retiredUnits, bsA.retiredUnits) << name;
        EXPECT_LE(bsA.retiredOps, trace.dynOps) << name;
        EXPECT_GE(bsA.retiredOps + trace.eventCount, trace.dynOps)
            << name;

        // Trace-cache machine: same committed stream again.
        const TraceCacheConfig tcConfig;
        const TraceCacheResult tcA =
            runTraceCache(module, abstractM, tcConfig, trace);
        const TraceCacheResult tcO =
            runTraceCache(module, oooM, tcConfig, trace);
        EXPECT_EQ(tcA.sim.retiredOps, trace.dynOps) << name;
        EXPECT_EQ(tcO.sim.retiredOps, trace.dynOps) << name;
        EXPECT_EQ(tcO.sim.retiredUnits, tcA.sim.retiredUnits) << name;
    }
}
