/**
 * @file
 * Tests of the experiment harness and the paper's headline shapes at
 * reduced scale: figure 3 (BSA wins on most benchmarks), figure 4
 * (the gap widens with perfect prediction), figure 5 (block sizes
 * grow ~5 -> ~8+), figures 6/7 (icache sensitivity ordering).
 *
 * These use BSISA_SCALE to shrink budgets so the whole suite runs in
 * seconds; the shapes are stable at this scale.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/figures.hh"

using namespace bsisa;

namespace
{

class ExpFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::setenv("BSISA_SCALE", "800", 1);
    }

    void
    TearDown() override
    {
        ::unsetenv("BSISA_SCALE");
    }
};

double
averageReduction(const std::vector<BenchOutcome> &outcomes)
{
    double sum = 0.0;
    for (const auto &o : outcomes)
        sum += o.reduction();
    return sum / double(outcomes.size());
}

const BenchOutcome &
find(const std::vector<BenchOutcome> &outcomes, const std::string &name)
{
    for (const auto &o : outcomes)
        if (o.name == name)
            return o;
    throw std::runtime_error("missing benchmark " + name);
}

} // namespace

TEST_F(ExpFixture, ScaleDivisorFromEnv)
{
    EXPECT_EQ(scaleDivisor(), 800u);
}

TEST_F(ExpFixture, Table1PrintsAllClasses)
{
    std::ostringstream os;
    printTable1(os);
    const std::string s = os.str();
    for (const char *needle :
         {"Integer", "FP Add", "FP/INT Mul", "FP/INT Div", "Load",
          "Store", "Bit Field", "Branch"}) {
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
    }
}

TEST_F(ExpFixture, Table2CountsAndBudgets)
{
    std::ostringstream os;
    const auto outcomes = printTable2(os);
    ASSERT_EQ(outcomes.size(), 8u);
    EXPECT_NE(os.str().find("103,015,025"), std::string::npos);
    // Measured dynamic ops hit the scaled budget (within one block).
    for (const auto &o : outcomes) {
        EXPECT_GE(o.dynOps, 75000u) << o.name;
        EXPECT_LE(o.dynOps, 400000u) << o.name;
    }
}

TEST_F(ExpFixture, Figure3Shape)
{
    std::ostringstream os;
    const auto outcomes = runCycleComparison(os, false);
    ASSERT_EQ(outcomes.size(), 8u);

    // Headline: the block-structured machine wins on most benchmarks
    // and by a meaningful average (the paper reports 12%).
    const double avg = averageReduction(outcomes);
    EXPECT_GT(avg, 0.05);
    EXPECT_LT(avg, 0.30);
    unsigned wins = 0;
    for (const auto &o : outcomes)
        wins += o.bsaCycles < o.convCycles;
    EXPECT_GE(wins, 6u);

    // gcc and go are the weakest cases (code duplication).
    const double gcc_red = find(outcomes, "gcc").reduction();
    const double go_red = find(outcomes, "go").reduction();
    for (const auto &o : outcomes) {
        if (o.name != "gcc" && o.name != "go") {
            EXPECT_GT(o.reduction(), go_red) << o.name;
        }
    }
    EXPECT_LT(gcc_red, avg);
    // At full scale go is a net LOSS (like the paper); at this test's
    // reduced budget the icache is not yet saturated, so just require
    // it to be far below the average.
    EXPECT_LT(go_red, 0.08);
    EXPECT_LT(go_red, avg / 2.0);
}

TEST_F(ExpFixture, Figure4PerfectPredictionWidensGap)
{
    std::ostringstream os;
    const auto real = runCycleComparison(os, false);
    const auto oracle = runCycleComparison(os, true);
    // The paper: 12% -> 19% average improvement.
    EXPECT_GT(averageReduction(oracle),
              averageReduction(real) + 0.02);
    // go flips from loss to clear win under perfect prediction.
    EXPECT_GT(find(oracle, "go").reduction(),
              find(real, "go").reduction());
    // Every benchmark is at least as fast with the oracle.
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_LE(oracle[i].bsaCycles, real[i].bsaCycles);
        EXPECT_LE(oracle[i].convCycles, real[i].convCycles);
    }
}

TEST_F(ExpFixture, Figure5BlockSizes)
{
    std::ostringstream os;
    const auto outcomes = runBlockSizeComparison(os);
    double conv = 0.0, bsa = 0.0;
    for (const auto &o : outcomes) {
        conv += o.convBlockSize;
        bsa += o.bsaBlockSize;
        EXPECT_GT(o.bsaBlockSize, o.convBlockSize) << o.name;
        EXPECT_LE(o.bsaBlockSize, 16.0) << o.name;
    }
    conv /= outcomes.size();
    bsa /= outcomes.size();
    // Paper: 5.2 -> 8.2.  Accept a band around that shape.
    EXPECT_GT(conv, 4.0);
    EXPECT_LT(conv, 8.5);
    EXPECT_GT(bsa, conv * 1.25);
    EXPECT_LT(bsa, conv * 2.0);
    // Half the 16-wide fetch bandwidth still unused (paper).
    EXPECT_LT(bsa, 12.0);
}

TEST_F(ExpFixture, Figures6And7IcacheShape)
{
    std::ostringstream os;
    const auto conv = runIcacheSweep(os, false);
    const auto bsa = runIcacheSweep(os, true);
    ASSERT_EQ(conv.size(), 8u);
    ASSERT_EQ(bsa.size(), 8u);

    for (std::size_t i = 0; i < conv.size(); ++i) {
        // Monotone: smaller caches never help.
        for (std::size_t k = 1; k < conv[i].relativeIncrease.size();
             ++k) {
            EXPECT_GE(conv[i].relativeIncrease[k - 1] + 1e-9,
                      conv[i].relativeIncrease[k]);
            EXPECT_GE(bsa[i].relativeIncrease[k - 1] + 1e-9,
                      bsa[i].relativeIncrease[k]);
        }
    }

    auto row = [](const std::vector<IcacheSweepRow> &rows,
                  const std::string &name) -> const IcacheSweepRow & {
        for (const auto &r : rows)
            if (r.name == name)
                return r;
        throw std::runtime_error("missing row");
    };

    // gcc and go degrade most, in BOTH ISAs, and the BSA executables
    // suffer more than the conventional ones (code duplication).
    for (const char *big : {"gcc", "go"}) {
        for (const char *small : {"compress", "li", "ijpeg"}) {
            EXPECT_GT(row(conv, big).relativeIncrease[0],
                      row(conv, small).relativeIncrease[0]);
            EXPECT_GT(row(bsa, big).relativeIncrease[0],
                      row(bsa, small).relativeIncrease[0]);
        }
        EXPECT_GT(row(bsa, big).relativeIncrease[0],
                  row(conv, big).relativeIncrease[0]);
    }

    // The small benchmarks barely notice even a 16 KB icache (paper).
    for (const char *small : {"compress", "li"}) {
        EXPECT_LT(row(conv, small).relativeIncrease[0], 0.05);
        EXPECT_LT(row(bsa, small).relativeIncrease[0], 0.08);
    }
}
