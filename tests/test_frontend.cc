/**
 * @file
 * Unit tests for the BlockC front end: lexer, parser, semantic
 * analysis, and IR generation (checked by executing compiled code).
 */

#include <gtest/gtest.h>

#include "frontend/compile.hh"
#include "frontend/lexer.hh"
#include "frontend/parser.hh"
#include "frontend/sema.hh"
#include "ir/verifier.hh"
#include "sim/interp.hh"

using namespace bsisa;

namespace
{

/** Compile and run, returning main's exit value. */
std::uint64_t
runProgram(const std::string &source)
{
    const Module m = compileBlockCOrDie(source);
    Interp interp(m);
    interp.run();
    EXPECT_TRUE(interp.halted());
    return interp.exitValue();
}

std::string
compileErrors(const std::string &source)
{
    const CompileResult r = compileBlockC(source);
    EXPECT_FALSE(r.ok);
    return r.errors;
}

} // namespace

// ----------------------------------------------------------- lexer

TEST(Lexer, TokenKinds)
{
    DiagSink diags;
    const auto toks =
        lex("fn main() { var x = 0x1F + 2; } // comment", diags);
    EXPECT_FALSE(diags.hasErrors());
    ASSERT_GE(toks.size(), 10u);
    EXPECT_EQ(toks[0].kind, TokKind::KwFn);
    EXPECT_EQ(toks[1].kind, TokKind::Ident);
    EXPECT_EQ(toks[1].text, "main");
    EXPECT_EQ(toks.back().kind, TokKind::EndOfFile);
}

TEST(Lexer, HexAndDecimalLiterals)
{
    DiagSink diags;
    const auto toks = lex("255 0xff 0", diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_EQ(toks[0].intValue, 255);
    EXPECT_EQ(toks[1].intValue, 255);
    EXPECT_EQ(toks[2].intValue, 0);
}

TEST(Lexer, MultiCharOperators)
{
    DiagSink diags;
    const auto toks = lex("== != <= >= << >> && ||", diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_EQ(toks[0].kind, TokKind::Eq);
    EXPECT_EQ(toks[1].kind, TokKind::Ne);
    EXPECT_EQ(toks[2].kind, TokKind::Le);
    EXPECT_EQ(toks[3].kind, TokKind::Ge);
    EXPECT_EQ(toks[4].kind, TokKind::Shl);
    EXPECT_EQ(toks[5].kind, TokKind::Shr);
    EXPECT_EQ(toks[6].kind, TokKind::AmpAmp);
    EXPECT_EQ(toks[7].kind, TokKind::PipePipe);
}

TEST(Lexer, BlockComments)
{
    DiagSink diags;
    const auto toks = lex("a /* skip \n all this */ b", diags);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, ReportsBadCharacter)
{
    DiagSink diags;
    lex("fn main() { @ }", diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, TracksLineNumbers)
{
    DiagSink diags;
    const auto toks = lex("a\nb\n  c", diags);
    EXPECT_EQ(toks[0].loc.line, 1u);
    EXPECT_EQ(toks[1].loc.line, 2u);
    EXPECT_EQ(toks[2].loc.line, 3u);
    EXPECT_EQ(toks[2].loc.col, 3u);
}

// ----------------------------------------------------------- parser

TEST(Parser, ReportsMissingSemicolon)
{
    const std::string errors = compileErrors("fn main() { var x = 1 }");
    EXPECT_NE(errors.find("expected"), std::string::npos);
}

TEST(Parser, ReportsSparseSwitchLabels)
{
    const std::string errors = compileErrors(
        "fn main() { switch (1) { case 1: { } } }");
    EXPECT_NE(errors.find("case labels"), std::string::npos);
}

// ------------------------------------------------------------- sema

TEST(Sema, RequiresMain)
{
    const std::string errors = compileErrors("fn foo() { }");
    EXPECT_NE(errors.find("main"), std::string::npos);
}

TEST(Sema, RejectsUndeclaredVariable)
{
    const std::string errors = compileErrors("fn main() { x = 1; }");
    EXPECT_NE(errors.find("undeclared"), std::string::npos);
}

TEST(Sema, RejectsUnknownCall)
{
    const std::string errors = compileErrors("fn main() { foo(); }");
    EXPECT_NE(errors.find("unknown function"), std::string::npos);
}

TEST(Sema, RejectsArityMismatch)
{
    const std::string errors = compileErrors(
        "fn f(a, b) { return a + b; } fn main() { f(1); }");
    EXPECT_NE(errors.find("expects 2 arguments"), std::string::npos);
}

TEST(Sema, RejectsScalarIndexing)
{
    const std::string errors = compileErrors(
        "var g; fn main() { g[0] = 1; }");
    EXPECT_NE(errors.find("not an array"), std::string::npos);
}

TEST(Sema, RejectsArrayWithoutIndex)
{
    const std::string errors = compileErrors(
        "var g[4]; fn main() { var x = g; }");
    EXPECT_NE(errors.find("without an index"), std::string::npos);
}

TEST(Sema, RejectsBreakOutsideLoop)
{
    const std::string errors = compileErrors("fn main() { break; }");
    EXPECT_NE(errors.find("outside a loop"), std::string::npos);
}

TEST(Sema, RejectsHaltOutsideMain)
{
    const std::string errors = compileErrors(
        "fn f() { halt; } fn main() { f(); }");
    EXPECT_NE(errors.find("halt"), std::string::npos);
}

TEST(Sema, RejectsDuplicateFunction)
{
    const std::string errors = compileErrors(
        "fn f() { } fn f() { } fn main() { }");
    EXPECT_NE(errors.find("duplicate function"), std::string::npos);
}

TEST(Sema, RejectsLibraryMain)
{
    const std::string errors = compileErrors("library fn main() { }");
    EXPECT_NE(errors.find("library"), std::string::npos);
}

// --------------------------------------------- end-to-end execution

TEST(Execute, ReturnLiteral)
{
    EXPECT_EQ(runProgram("fn main() { return 42; }"), 42u);
}

TEST(Execute, Arithmetic)
{
    EXPECT_EQ(runProgram("fn main() { return (2 + 3) * 4 - 6 / 2; }"),
              17u);
    EXPECT_EQ(runProgram("fn main() { return 17 % 5; }"), 2u);
    EXPECT_EQ(runProgram("fn main() { return 1 << 6; }"), 64u);
    EXPECT_EQ(runProgram("fn main() { return 64 >> 3; }"), 8u);
    // C precedence: ^ binds tighter than |, so this is 1 | (8 ^ 1).
    EXPECT_EQ(runProgram("fn main() { return (5 & 3) | 8 ^ 1; }"), 9u);
}

TEST(Execute, UnaryOperators)
{
    EXPECT_EQ(static_cast<std::int64_t>(
                  runProgram("fn main() { return -7; }")),
              -7);
    EXPECT_EQ(runProgram("fn main() { return !0; }"), 1u);
    EXPECT_EQ(runProgram("fn main() { return !5; }"), 0u);
    EXPECT_EQ(runProgram("fn main() { return ~0 & 0xff; }"), 0xffu);
}

TEST(Execute, Comparisons)
{
    EXPECT_EQ(runProgram("fn main() { return 3 < 4; }"), 1u);
    EXPECT_EQ(runProgram("fn main() { return 4 <= 4; }"), 1u);
    EXPECT_EQ(runProgram("fn main() { return 5 > 6; }"), 0u);
    EXPECT_EQ(runProgram("fn main() { return 6 >= 7; }"), 0u);
    EXPECT_EQ(runProgram("fn main() { return 0 - 1 < 1; }"), 1u);
}

TEST(Execute, ShortCircuit)
{
    // The right side of && must not execute when the left is false:
    // here it would divide by zero, which yields 0, so instead we use
    // a global side effect to detect evaluation.
    const std::string src = R"(
        var touched;
        fn touch() { touched = 1; return 1; }
        fn main() {
            var a = 0 && touch();
            var b = touched;
            var c = 1 || touch();
            return b * 10 + touched + a + c - 1;
        }
    )";
    // touched stays 0 throughout: b=0, final touched=0, a=0, c=1.
    EXPECT_EQ(runProgram(src), 0u);
}

TEST(Execute, IfElseChains)
{
    const std::string src = R"(
        fn classify(x) {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else { return 3; }
        }
        fn main() {
            return classify(5) * 100 + classify(50) * 10 + classify(500);
        }
    )";
    EXPECT_EQ(runProgram(src), 123u);
}

TEST(Execute, WhileLoop)
{
    const std::string src = R"(
        fn main() {
            var i = 0;
            var sum = 0;
            while (i < 10) { sum = sum + i; i = i + 1; }
            return sum;
        }
    )";
    EXPECT_EQ(runProgram(src), 45u);
}

TEST(Execute, ForLoopWithBreakContinue)
{
    const std::string src = R"(
        fn main() {
            var sum = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i == 7) { continue; }
                if (i == 10) { break; }
                sum = sum + i;
            }
            return sum;
        }
    )";
    EXPECT_EQ(runProgram(src), 45u - 7u);
}

TEST(Execute, GlobalsAndArrays)
{
    const std::string src = R"(
        var total = 5;
        var buf[8];
        fn main() {
            for (var i = 0; i < 8; i = i + 1) { buf[i] = i * i; }
            var sum = total;
            for (var j = 0; j < 8; j = j + 1) { sum = sum + buf[j]; }
            return sum;
        }
    )";
    EXPECT_EQ(runProgram(src), 5u + 140u);
}

TEST(Execute, RecursionFibonacci)
{
    const std::string src = R"(
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(12); }
    )";
    EXPECT_EQ(runProgram(src), 144u);
}

TEST(Execute, SwitchDispatch)
{
    const std::string src = R"(
        fn pick(s) {
            var r = 0;
            switch (s) {
                case 0: { r = 100; }
                case 1: { r = 200; }
                case 2: { r = 300; }
            }
            return r;
        }
        fn main() { return pick(0) + pick(1) + pick(2) + pick(4); }
    )";
    // pick(4) wraps modulo 3 to case 1 by the ISA's IJmp semantics.
    EXPECT_EQ(runProgram(src), 100u + 200u + 300u + 200u);
}

TEST(Execute, LibraryFunctionsRunNormally)
{
    const std::string src = R"(
        library fn lib_add(a, b) { return a + b; }
        fn main() { return lib_add(20, 22); }
    )";
    const Module m = compileBlockCOrDie(src);
    EXPECT_TRUE(m.findFunction("lib_add")->isLibrary);
    Interp interp(m);
    interp.run();
    EXPECT_EQ(interp.exitValue(), 42u);
}

TEST(Execute, DeepArgumentPassing)
{
    const std::string src = R"(
        fn sum8(a, b, c, d, e, f, g, h) {
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + g * 7
                 + h * 8;
        }
        fn main() { return sum8(1, 1, 1, 1, 1, 1, 1, 1); }
    )";
    EXPECT_EQ(runProgram(src), 36u);
}

TEST(Execute, UnoptimizedMatchesOptimized)
{
    const std::string src = R"(
        var acc;
        fn step(x) { acc = acc + x * 3 - 1; return acc; }
        fn main() {
            var r = 0;
            for (var i = 0; i < 20; i = i + 1) { r = step(i) + r; }
            return r & 0xffff;
        }
    )";
    CompileOptions no_opt;
    no_opt.optimize = false;
    const Module m1 = compileBlockCOrDie(src, no_opt);
    const Module m2 = compileBlockCOrDie(src);
    Interp i1(m1), i2(m2);
    i1.run();
    i2.run();
    EXPECT_EQ(i1.exitValue(), i2.exitValue());
    EXPECT_EQ(i1.memChecksum(), i2.memChecksum());
    // Optimization should not grow the program.
    EXPECT_LE(m2.numOps(), m1.numOps());
}
