/**
 * @file
 * Replays the checked-in fuzz corpus (tests/data/fuzz_corpus) through
 * all three differential oracles and against each entry's expected-
 * state sidecar.  The corpus is generator-produced and covers the
 * oracle classes by construction: call-dense programs, fault-heavy
 * unpredictable branching, deep loop nests, and straight-line bursts
 * sitting exactly on the 16-op maximum-block-size boundary.
 *
 * BSISA_FUZZ_CORPUS_DIR is injected by the build so the suite runs
 * from any working directory.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend/compile.hh"
#include "fuzz/corpus.hh"
#include "fuzz/oracle.hh"
#include "ir/module.hh"

using namespace bsisa;
using namespace bsisa::fuzz;

namespace
{

std::string
corpusDir()
{
    return BSISA_FUZZ_CORPUS_DIR;
}

} // namespace

TEST(FuzzCorpusTest, CorpusIsPresentAndCoversTheOracleClasses)
{
    const std::vector<std::string> names = listCorpus(corpusDir());
    ASSERT_GE(names.size(), 10u);
    // Every generator profile must be represented (entry names are
    // "<profile>-seed<N>").
    for (const char *profile :
         {"default", "call-dense", "fault-heavy", "deep-loops",
          "wide-blocks"}) {
        bool found = false;
        for (const std::string &name : names)
            if (name.rfind(profile, 0) == 0)
                found = true;
        EXPECT_TRUE(found) << "no corpus entry for " << profile;
    }
}

TEST(FuzzCorpusTest, EntriesMatchTheirSidecars)
{
    const std::vector<std::string> names = listCorpus(corpusDir());
    ASSERT_FALSE(names.empty());
    Interp::Limits limits;
    limits.maxOps = 1u << 20;
    for (const std::string &name : names) {
        std::string source;
        Expectation want;
        ASSERT_TRUE(readCorpusEntry(corpusDir(), name, source, want))
            << name;
        const CompileResult compiled = compileBlockC(source);
        ASSERT_TRUE(compiled.ok) << name << ":\n" << compiled.errors;

        const Expectation got =
            computeExpectation(compiled.module, limits);
        EXPECT_TRUE(got.halted) << name;
        EXPECT_EQ(got.exit, want.exit) << name;
        EXPECT_EQ(got.dataChecksum, want.dataChecksum) << name;
        EXPECT_EQ(got.memChecksum, want.memChecksum) << name;
        EXPECT_EQ(got.dynOps, want.dynOps) << name;
        EXPECT_EQ(got.dynBlocks, want.dynBlocks) << name;
    }
}

TEST(FuzzCorpusTest, EntriesPassAllOracles)
{
    const std::vector<std::string> names = listCorpus(corpusDir());
    ASSERT_FALSE(names.empty());
    OracleOptions options;
    // The BSISA_JOBS fan-out cross-check runs once (below), not per
    // entry — it dominates runtime and tests the harness, not the
    // corpus program.
    options.checkParallel = false;
    for (const std::string &name : names) {
        std::string source;
        Expectation want;
        ASSERT_TRUE(readCorpusEntry(corpusDir(), name, source, want))
            << name;
        const OracleResult r =
            checkProgram(source, oracleAll, options);
        EXPECT_TRUE(r.ok)
            << name << ": [" << r.oracle << "] " << r.detail;
    }
}

TEST(FuzzCorpusTest, ParallelFanOutCrossCheck)
{
    const std::vector<std::string> names = listCorpus(corpusDir());
    ASSERT_FALSE(names.empty());
    std::string source;
    Expectation want;
    ASSERT_TRUE(
        readCorpusEntry(corpusDir(), names.front(), source, want));
    OracleOptions options;
    options.checkParallel = true;
    const OracleResult r = checkProgram(source, oracleModels, options);
    EXPECT_TRUE(r.ok) << "[" << r.oracle << "] " << r.detail;
}

TEST(FuzzCorpusTest, WideBlocksEntriesSitOnTheSixteenOpBoundary)
{
    const std::vector<std::string> names = listCorpus(corpusDir());
    bool checked = false;
    for (const std::string &name : names) {
        if (name.rfind("wide-blocks", 0) != 0)
            continue;
        std::string source;
        Expectation want;
        ASSERT_TRUE(readCorpusEntry(corpusDir(), name, source, want));
        const Module m = compileBlockCOrDie(source);
        std::size_t maxOps = 0;
        for (const Function &f : m.functions)
            for (const Block &b : f.blocks)
                maxOps = std::max(maxOps, b.ops.size());
        EXPECT_EQ(maxOps, 16u) << name;
        checked = true;
    }
    EXPECT_TRUE(checked);
}
