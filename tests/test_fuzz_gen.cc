/**
 * @file
 * Generator and shrinker properties: generation is a deterministic
 * function of the seed, every generated program compiles and
 * terminates within the op budget (across all shape profiles), and
 * the shrinker only ever returns programs that still satisfy the
 * failure predicate it was given.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "frontend/compile.hh"
#include "fuzz/corpus.hh"
#include "fuzz/gen.hh"
#include "fuzz/shrink.hh"
#include "sim/interp.hh"

using namespace bsisa;
using namespace bsisa::fuzz;

namespace
{

constexpr std::uint64_t kOpBudget = 1u << 20;

Interp::Limits
budget()
{
    Interp::Limits limits;
    limits.maxOps = kOpBudget;
    return limits;
}

} // namespace

TEST(FuzzGenTest, SameSeedIsByteIdentical)
{
    const GenConfig cfg;
    for (const std::uint64_t seed : {1ull, 42ull, 977ull}) {
        const std::string a = generateProgram(seed, cfg).render();
        const std::string b = generateProgram(seed, cfg).render();
        EXPECT_EQ(a, b) << "seed " << seed;
    }
    EXPECT_NE(generateProgram(1, cfg).render(),
              generateProgram(2, cfg).render());
}

TEST(FuzzGenTest, ProfilesAreNamedAndDistinct)
{
    const auto &names = genProfileNames();
    ASSERT_GE(names.size(), 5u);
    // Same seed, different profiles: the shape knobs must matter.
    const std::string base = generateProgram(7, genProfile("default"))
                                 .render();
    for (const std::string &name : names) {
        if (name == "default")
            continue;
        EXPECT_NE(base, generateProgram(7, genProfile(name)).render())
            << name;
    }
}

TEST(FuzzGenTest, EveryProgramCompilesAndTerminates)
{
    const auto &names = genProfileNames();
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const std::string profile = names[seed % names.size()];
        const FuzzProgram program =
            generateProgram(seed, genProfile(profile));
        const CompileResult compiled = compileBlockC(program.render());
        ASSERT_TRUE(compiled.ok)
            << profile << " seed " << seed << ":\n" << compiled.errors;

        Interp interp(compiled.module, budget());
        interp.run();
        EXPECT_TRUE(interp.halted())
            << profile << " seed " << seed << " ran "
            << interp.dynOps() << " ops without halting";
    }
}

TEST(FuzzGenTest, WideBlocksProfileReachesTheIssueWidthBoundary)
{
    // The wide-blocks profile exists to exercise the 16-op block
    // boundary: after the compile-time split, some block must sit
    // exactly at the cap.
    const FuzzProgram program =
        generateProgram(105, genProfile("wide-blocks"));
    const Module m = compileBlockCOrDie(program.render());
    std::size_t maxOps = 0;
    for (const Function &f : m.functions)
        for (const Block &b : f.blocks)
            maxOps = std::max(maxOps, b.ops.size());
    EXPECT_EQ(maxOps, 16u);
}

TEST(FuzzShrinkTest, ResultStillFailsThePredicate)
{
    const FuzzProgram program =
        generateProgram(3, genProfile("default"));

    // A semantic predicate: the program compiles AND still executes
    // a nontrivial amount of work.  Shrink candidates that stop
    // compiling (e.g. a hoisted loop body referencing its dropped
    // counter) must be rejected, not adopted.
    const FailPredicate pred = [](const FuzzProgram &candidate) {
        const CompileResult c = compileBlockC(candidate.render());
        if (!c.ok)
            return false;
        Interp interp(c.module, budget());
        interp.run();
        return interp.halted() && interp.dynOps() > 50;
    };
    ASSERT_TRUE(pred(program));

    ShrinkStats stats;
    const FuzzProgram minimal = shrink(program, pred, 400, &stats);
    EXPECT_TRUE(pred(minimal));
    EXPECT_LE(minimal.renderedLines(), program.renderedLines());
    EXPECT_LT(stats.linesAfter, stats.linesBefore);
    EXPECT_GT(stats.candidatesTried, 0u);
}

TEST(FuzzShrinkTest, ReturnsOriginalWhenNothingSmallerFails)
{
    const FuzzProgram program =
        generateProgram(4, genProfile("default"));
    const std::string original = program.render();
    // Predicate pinned to the exact original source: no strictly
    // smaller candidate can match it.
    const FailPredicate pred = [&](const FuzzProgram &candidate) {
        return candidate.render() == original;
    };
    const FuzzProgram minimal = shrink(program, pred, 200);
    EXPECT_EQ(minimal.render(), original);
}

TEST(FuzzCorpusIoTest, ExpectationAndEntryRoundTrip)
{
    Expectation e;
    e.halted = true;
    e.exit = 187;
    e.dataChecksum = 0xdeadbeefcafef00dULL;
    e.memChecksum = 12345;
    e.dynOps = 2923;
    e.dynBlocks = 273;
    Expectation back;
    ASSERT_TRUE(parseExpectation(formatExpectation(e), back));
    EXPECT_EQ(back.halted, e.halted);
    EXPECT_EQ(back.exit, e.exit);
    EXPECT_EQ(back.dataChecksum, e.dataChecksum);
    EXPECT_EQ(back.memChecksum, e.memChecksum);
    EXPECT_EQ(back.dynOps, e.dynOps);
    EXPECT_EQ(back.dynBlocks, e.dynBlocks);

    Expectation bad;
    EXPECT_FALSE(parseExpectation("exit 1\n", bad));
    EXPECT_FALSE(parseExpectation("bogus 7\n", bad));

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "bsisa-corpus-io-test").string();
    const std::string source = "fn main() { return 187; }\n";
    ASSERT_TRUE(writeCorpusEntry(dir, "unit", source, e));
    std::string src2;
    Expectation e2;
    ASSERT_TRUE(readCorpusEntry(dir, "unit", src2, e2));
    EXPECT_EQ(src2, source);
    EXPECT_EQ(e2.exit, e.exit);
    const auto names = listCorpus(dir);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names.front(), "unit");
    std::filesystem::remove_all(dir);
}
