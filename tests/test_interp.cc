/**
 * @file
 * Unit tests for the functional interpreter and memory model: event
 * streams, limits, call/return windows, and ALU corner cases.
 */

#include <gtest/gtest.h>

#include <bit>

#include "frontend/compile.hh"
#include "sim/alu.hh"
#include "sim/interp.hh"
#include "sim/memory.hh"

using namespace bsisa;

TEST(Memory, ReadWriteRoundTrip)
{
    Memory mem;
    mem.write(0x1000, 0xdeadbeef);
    EXPECT_EQ(mem.read(0x1000), 0xdeadbeefu);
    EXPECT_EQ(mem.read(0x1008), 0u);  // untouched word in same page
    EXPECT_EQ(mem.read(0x999000), 0u);  // untouched page
}

TEST(Memory, InitBulk)
{
    Memory mem;
    mem.init(0x2000, {1, 2, 3});
    EXPECT_EQ(mem.read(0x2000), 1u);
    EXPECT_EQ(mem.read(0x2008), 2u);
    EXPECT_EQ(mem.read(0x2010), 3u);
}

TEST(Memory, ChecksumOrderIndependent)
{
    Memory a, b;
    a.write(0x1000, 7);
    a.write(0x2000, 9);
    b.write(0x2000, 9);
    b.write(0x1000, 7);
    EXPECT_EQ(a.checksum(), b.checksum());
    b.write(0x1000, 8);
    EXPECT_NE(a.checksum(), b.checksum());
}

TEST(Memory, SpeculativeReadTolerant)
{
    Memory mem;
    mem.write(0x1000, 5);
    EXPECT_EQ(mem.readSpec(0x1003), 5u);   // aligned down
    EXPECT_EQ(mem.readSpec(0xffffffffull), 0u);
}

TEST(Alu, SignedDivisionCorners)
{
    Operation div = makeBin(Opcode::Div, 1, 2, 3);
    std::uint64_t out = 1;
    EXPECT_TRUE(evalAluOp(div, 7, 0, out));
    EXPECT_EQ(out, 0u);  // divide by zero yields 0
    EXPECT_TRUE(evalAluOp(div, static_cast<std::uint64_t>(INT64_MIN),
                          static_cast<std::uint64_t>(-1), out));
    EXPECT_EQ(out, static_cast<std::uint64_t>(INT64_MIN));

    Operation rem = makeBin(Opcode::Rem, 1, 2, 3);
    EXPECT_TRUE(evalAluOp(rem, 7, 0, out));
    EXPECT_EQ(out, 7u);  // x % 0 == x
    EXPECT_TRUE(evalAluOp(rem, static_cast<std::uint64_t>(INT64_MIN),
                          static_cast<std::uint64_t>(-1), out));
    EXPECT_EQ(out, 0u);
}

TEST(Alu, ShiftsMaskCount)
{
    Operation shl = makeBin(Opcode::Shl, 1, 2, 3);
    std::uint64_t out = 0;
    EXPECT_TRUE(evalAluOp(shl, 1, 64, out));
    EXPECT_EQ(out, 1u);  // count masked to 0
    EXPECT_TRUE(evalAluOp(shl, 1, 65, out));
    EXPECT_EQ(out, 2u);
}

TEST(Alu, FpOperations)
{
    const auto bits = [](double d) {
        return std::bit_cast<std::uint64_t>(d);
    };
    std::uint64_t out = 0;
    EXPECT_TRUE(evalAluOp(makeBin(Opcode::FAdd, 1, 2, 3), bits(1.5),
                          bits(2.25), out));
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(out), 3.75);
    EXPECT_TRUE(evalAluOp(makeBin(Opcode::FDiv, 1, 2, 3), bits(1.0),
                          bits(0.0), out));
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(out), 0.0);  // defined
    EXPECT_TRUE(evalAluOp(makeMov(1, 2), 77, 0, out));
    EXPECT_EQ(out, 77u);
    // FCvt: int -> double.
    Operation cvt;
    cvt.op = Opcode::FCvt;
    cvt.dst = 1;
    cvt.src1 = 2;
    EXPECT_TRUE(evalAluOp(cvt, static_cast<std::uint64_t>(-3), 0, out));
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(out), -3.0);
}

TEST(Alu, RejectsNonAluOps)
{
    std::uint64_t out;
    EXPECT_FALSE(evalAluOp(makeLd(1, 2, 0), 0, 0, out));
    EXPECT_FALSE(evalAluOp(makeSt(1, 0, 2), 0, 0, out));
    EXPECT_FALSE(evalAluOp(makeJmp(0), 0, 0, out));
    EXPECT_FALSE(evalAluOp(makeTrap(1, 0, 0), 0, 0, out));
    EXPECT_FALSE(evalAluOp(makeFault(1, 0), 0, 0, out));
    EXPECT_FALSE(evalAluOp(makeNop(), 0, 0, out));
}

TEST(Interp, EventStreamShape)
{
    const std::string src = R"(
        fn main() {
            var x = 1;
            if (x) { x = 2; } else { x = 3; }
            return x;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    Interp interp(m);
    BlockEvent ev;
    bool saw_trap = false, saw_halt = false;
    while (interp.step(ev)) {
        if (ev.exit == ExitKind::Trap) {
            saw_trap = true;
            EXPECT_EQ(ev.nextBlock,
                      ev.taken ? m.functions[m.mainFunc]
                                     .blocks[ev.block]
                                     .terminator()
                                     .target0
                               : m.functions[m.mainFunc]
                                     .blocks[ev.block]
                                     .terminator()
                                     .target1);
        }
        if (ev.exit == ExitKind::Halt)
            saw_halt = true;
    }
    EXPECT_TRUE(saw_halt);
    EXPECT_TRUE(interp.halted());
    // The optimizer may fold the constant branch away entirely, so
    // saw_trap is not asserted; the shape invariant above matters.
    (void)saw_trap;
}

TEST(Interp, MemAddrsReported)
{
    const std::string src = R"(
        var buf[4];
        fn main() {
            buf[0] = 7;
            var x = buf[0];
            return x;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    Interp interp(m);
    BlockEvent ev;
    std::size_t mem_ops = 0;
    while (interp.step(ev))
        mem_ops += ev.memCount;
    // At least the store and the load (spills may add more).
    EXPECT_GE(mem_ops, 2u);
    EXPECT_EQ(interp.exitValue(), 7u);
}

TEST(Interp, OpBudgetStopsCleanly)
{
    const std::string src = R"(
        fn main() {
            var i = 0;
            while (1) { i = i + 1; }
            return i;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    Interp::Limits limits;
    limits.maxOps = 1000;
    Interp interp(m, limits);
    interp.run();
    EXPECT_FALSE(interp.halted());
    EXPECT_GE(interp.dynOps(), 1000u);
    EXPECT_LT(interp.dynOps(), 1100u);  // stops at a block boundary
}

TEST(Interp, BlockBudget)
{
    const std::string src =
        "fn main() { var i = 0; while (1) { i = i + 1; } return i; }";
    const Module m = compileBlockCOrDie(src);
    Interp::Limits limits;
    limits.maxBlocks = 10;
    Interp interp(m, limits);
    interp.run();
    EXPECT_EQ(interp.dynBlocks(), 10u);
}

TEST(Interp, RegisterWindowsPreserveCallerState)
{
    // clobber() writes its own locals heavily; the caller's locals
    // must be unaffected thanks to the windowed ABI.
    const std::string src = R"(
        fn clobber() {
            var a = 1; var b = 2; var c = 3; var d = 4;
            var e = 5; var f = 6; var g = 7; var h = 8;
            return a + b + c + d + e + f + g + h;
        }
        fn main() {
            var x = 11;
            var y = 22;
            var z = clobber();
            return x + y + (z == 36);
        }
    )";
    const Module m = compileBlockCOrDie(src);
    Interp interp(m);
    interp.run();
    EXPECT_EQ(interp.exitValue(), 34u);
}

TEST(Interp, StackFramesIsolateSpills)
{
    // Recursive function with enough locals to force spilling; each
    // frame's spill slots must be private.
    const std::string src = R"(
        fn weird(n) {
            var a = n + 1; var b = n + 2; var c = n + 3;
            var d = n + 4; var e = n + 5; var f = n + 6;
            var g = n + 7; var h = n + 8; var i = n + 9;
            var j = n + 10; var k = n + 11; var l = n + 12;
            var mm = n + 13; var o = n + 14; var p = n + 15;
            var q = n + 16; var r = n + 17; var s = n + 18;
            var t = n + 19; var u = n + 20; var v = n + 21;
            var w = n + 22; var x = n + 23; var y = n + 24;
            if (n == 0) { return 0; }
            var deeper = weird(n - 1);
            return deeper + a + b + c + d + e + f + g + h + i + j + k
                 + l + mm + o + p + q + r + s + t + u + v + w + x + y;
        }
        fn main() { return weird(3); }
    )";
    const Module m = compileBlockCOrDie(src);
    Interp interp(m);
    interp.run();
    // n=3: 24n + (1..24)=300 -> 372; n=2: 348; n=1: 324; n=0: 0.
    EXPECT_EQ(interp.exitValue(), 372u + 348u + 324u);
}

TEST(Interp, ExitValueFromHalt)
{
    const Module m = compileBlockCOrDie(
        "fn main() { var x = 9; halt; return 1; }");
    Interp interp(m);
    interp.run();
    EXPECT_TRUE(interp.halted());
    // halt leaves regRet at whatever it was (0 here).
    EXPECT_EQ(interp.exitValue(), 0u);
}
