/**
 * @file
 * Unit tests for the IR: module construction, CFG utilities,
 * dominators, natural loops, and the verifier.
 */

#include <gtest/gtest.h>

#include "ir/cfg.hh"
#include "ir/dom.hh"
#include "ir/module.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

#include <sstream>

using namespace bsisa;

namespace
{

/** Diamond: B0 -> (B1|B2) -> B3 -> halt. */
Module
diamondModule()
{
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    f.newBlock();  // B0
    f.newBlock();  // B1
    f.newBlock();  // B2
    f.newBlock();  // B3
    const RegNum c = f.newReg();
    f.blocks[0].ops = {makeMovI(c, 1), makeTrap(c, 1, 2)};
    f.blocks[1].ops = {makeJmp(3)};
    f.blocks[2].ops = {makeJmp(3)};
    f.blocks[3].ops = {makeHalt()};
    return m;
}

/** Loop: B0 -> B1(header) -> B2(body) -> B1; B1 -> B3 exit. */
Module
loopModule()
{
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    for (int i = 0; i < 4; ++i)
        f.newBlock();
    const RegNum c = f.newReg();
    f.blocks[0].ops = {makeMovI(c, 10), makeJmp(1)};
    f.blocks[1].ops = {makeTrap(c, 2, 3)};
    f.blocks[2].ops = {makeBinI(Opcode::AddI, c, c, -1), makeJmp(1)};
    f.blocks[3].ops = {makeHalt()};
    return m;
}

} // namespace

TEST(Module, AddAndFindFunctions)
{
    Module m;
    // NOTE: addFunction invalidates earlier Function references.
    m.addFunction("alpha");
    m.addFunction("beta");
    EXPECT_EQ(m.functions[0].id, 0u);
    EXPECT_EQ(m.functions[1].id, 1u);
    EXPECT_EQ(m.findFunction("alpha")->id, 0u);
    EXPECT_EQ(m.findFunction("nope"), nullptr);
}

TEST(Module, DataAllocation)
{
    Module m;
    const std::uint64_t a = m.allocData(4);
    const std::uint64_t b = m.allocData(2);
    EXPECT_EQ(a, Module::dataBase);
    EXPECT_EQ(b, Module::dataBase + 32);
    EXPECT_EQ(m.data.size(), 6u);
}

TEST(Module, NewRegAndNumOps)
{
    Module m = diamondModule();
    Function &f = m.functions[0];
    EXPECT_EQ(f.newReg(), firstVirtualReg + 1);
    EXPECT_EQ(f.numOps(), 5u);
    EXPECT_EQ(m.numOps(), 5u);
}

TEST(Cfg, DiamondSuccessors)
{
    const Module m = diamondModule();
    const Function &f = m.functions[0];
    EXPECT_EQ(blockSuccessors(f, 0), (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(blockSuccessors(f, 1), (std::vector<BlockId>{3}));
    EXPECT_EQ(blockSuccessors(f, 3), (std::vector<BlockId>{}));
}

TEST(Cfg, Predecessors)
{
    const Module m = diamondModule();
    const auto preds = blockPredecessors(m.functions[0]);
    EXPECT_TRUE(preds[0].empty());
    EXPECT_EQ(preds[3], (std::vector<BlockId>{1, 2}));
}

TEST(Cfg, ReversePostOrderStartsAtEntry)
{
    const Module m = diamondModule();
    const auto rpo = reversePostOrder(m.functions[0]);
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), 0u);
    EXPECT_EQ(rpo.back(), 3u);
}

TEST(Cfg, UnreachableBlocksOmitted)
{
    Module m = diamondModule();
    Function &f = m.functions[0];
    const BlockId dead = f.newBlock();
    f.blocks[dead].ops = {makeHalt()};
    const auto reach = reachableBlocks(f);
    EXPECT_FALSE(reach[dead]);
    EXPECT_TRUE(reach[0]);
    EXPECT_EQ(reversePostOrder(f).size(), 4u);
}

TEST(Cfg, CallSuccessorIsContinuation)
{
    Module m;
    m.mainFunc = m.addFunction("main").id;
    m.addFunction("callee");
    Function &g = m.functions[1];
    g.newBlock();
    g.blocks[0].ops = {makeRet()};
    Function &f = m.functions[0];
    f.newBlock();
    f.newBlock();
    f.blocks[0].ops = {makeCall(g.id, 1)};
    f.blocks[1].ops = {makeHalt()};
    EXPECT_EQ(blockSuccessors(m.functions[0], 0),
              (std::vector<BlockId>{1}));
}

TEST(Cfg, IJmpSuccessorsDeduplicated)
{
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    for (int i = 0; i < 3; ++i)
        f.newBlock();
    const RegNum s = f.newReg();
    f.jumpTables.push_back({1, 2, 1});
    f.blocks[0].ops = {makeMovI(s, 0), makeIJmp(s, 0)};
    f.blocks[1].ops = {makeHalt()};
    f.blocks[2].ops = {makeHalt()};
    EXPECT_EQ(blockSuccessors(f, 0), (std::vector<BlockId>{1, 2}));
}

TEST(Dom, Diamond)
{
    const Module m = diamondModule();
    const DomInfo dom(m.functions[0]);
    EXPECT_TRUE(dom.dominates(0, 0));
    EXPECT_TRUE(dom.dominates(0, 1));
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_FALSE(dom.dominates(2, 3));
    EXPECT_EQ(dom.idom(3), 0u);
    EXPECT_EQ(dom.idom(1), 0u);
}

TEST(Dom, LoopBackEdgeAndHeader)
{
    const Module m = loopModule();
    const DomInfo dom(m.functions[0]);
    EXPECT_TRUE(dom.isBackEdge(2, 1));
    EXPECT_FALSE(dom.isBackEdge(1, 2));
    EXPECT_FALSE(dom.isBackEdge(0, 1));
    EXPECT_TRUE(dom.isLoopHeader(1));
    EXPECT_FALSE(dom.isLoopHeader(2));
    EXPECT_FALSE(dom.isLoopHeader(0));
}

TEST(Dom, UnreachableBlocks)
{
    Module m = diamondModule();
    Function &f = m.functions[0];
    const BlockId dead = f.newBlock();
    f.blocks[dead].ops = {makeHalt()};
    const DomInfo dom(f);
    EXPECT_FALSE(dom.reachable(dead));
    EXPECT_FALSE(dom.dominates(0, dead));
    EXPECT_TRUE(dom.reachable(3));
}

TEST(Verifier, AcceptsValidModule)
{
    const Module m = diamondModule();
    EXPECT_TRUE(verifyModule(m).empty());
}

TEST(Verifier, RejectsUnsealedBlock)
{
    Module m = diamondModule();
    m.functions[0].blocks[3].ops = {makeMovI(firstVirtualReg, 1)};
    const auto problems = verifyModule(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsMidBlockTerminator)
{
    Module m = diamondModule();
    m.functions[0].blocks[1].ops = {makeJmp(3), makeJmp(3)};
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, RejectsOutOfRangeTarget)
{
    Module m = diamondModule();
    m.functions[0].blocks[1].ops = {makeJmp(99)};
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, RejectsOutOfRangeRegister)
{
    Module m = diamondModule();
    Function &f = m.functions[0];
    f.blocks[1].ops = {makeMov(f.numVirtualRegs + 5, 1), makeJmp(3)};
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, RejectsWriteToZeroRegister)
{
    Module m = diamondModule();
    m.functions[0].blocks[1].ops = {makeMovI(regZero, 1), makeJmp(3)};
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, AcceptsHaltFreeLoopingMain)
{
    // An infinite-loop main legitimately has no halt (unreachable
    // code elimination removes it); the verifier must accept it.
    Module m = diamondModule();
    m.functions[0].blocks[3].ops = {makeJmp(3)};
    EXPECT_TRUE(verifyModule(m).empty());
}

TEST(Verifier, RejectsFaultInConventionalIR)
{
    Module m = diamondModule();
    m.functions[0].blocks[1].ops = {makeFault(firstVirtualReg, 0),
                                    makeJmp(3)};
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, RejectsBadCall)
{
    Module m = diamondModule();
    m.functions[0].blocks[1].ops = {makeCall(42, 3)};
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, RejectsBadJumpTable)
{
    Module m = diamondModule();
    Function &f = m.functions[0];
    f.blocks[1].ops = {makeIJmp(firstVirtualReg, 0)};
    EXPECT_FALSE(verifyModule(m).empty());  // table 0 does not exist
}

TEST(Printer, DumpContainsStructure)
{
    const Module m = diamondModule();
    std::ostringstream os;
    printModule(os, m);
    const std::string s = os.str();
    EXPECT_NE(s.find("func main"), std::string::npos);
    EXPECT_NE(s.find("B0:"), std::string::npos);
    EXPECT_NE(s.find("halt"), std::string::npos);
}
