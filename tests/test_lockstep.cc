/**
 * @file
 * Tests for the lockstep multi-config sweep engine (sim/lockstep.hh)
 * and its runner-level batch APIs (exp/runner.hh).
 *
 * The contract under test is bit-equality: a batched walk that
 * advances N machine configs per trace event must produce exactly the
 * SimResult of running each config through the sequential per-config
 * replay, for every fetch model, every batch size (including odd
 * splits and the singleton fallback), and any BSISA_JOBS fan-out of a
 * sweep's batches.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cache/trace_cache.hh"
#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "sim/trace.hh"
#include "support/parallel.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

Interp::Limits
testLimits(const SpecBenchmark &bench)
{
    Interp::Limits limits;
    limits.maxOps = bench.scaledBudget(4000);
    return limits;
}

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
}

void
expectSameSim(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.retiredUnits, b.retiredUnits);
    EXPECT_EQ(a.wrongPathOps, b.wrongPathOps);
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.trapMispredicts, b.trapMispredicts);
    EXPECT_EQ(a.faultMispredicts, b.faultMispredicts);
    EXPECT_EQ(a.cascadeHops, b.cascadeHops);
    EXPECT_EQ(a.stallRedirect, b.stallRedirect);
    EXPECT_EQ(a.stallWindow, b.stallWindow);
    EXPECT_EQ(a.stallIcache, b.stallIcache);
    EXPECT_EQ(a.peakWindowUnits, b.peakWindowUnits);
    EXPECT_EQ(a.peakWindowOps, b.peakWindowOps);
    expectSameCacheStats(a.icache, b.icache);
    expectSameCacheStats(a.dcache, b.dcache);
}

/** Sixteen configs disagreeing on issue width, predictor geometry,
 *  prediction mode, and icache size, so lockstep lanes diverge hard
 *  (different redirects, window pressure, and fill behavior). */
std::vector<MachineConfig>
grid16()
{
    std::vector<MachineConfig> grid;
    for (const unsigned width : {8u, 16u}) {
        for (const unsigned hist : {8u, 12u}) {
            for (const bool perfect : {false, true}) {
                for (const unsigned kb : {16u, 64u}) {
                    MachineConfig m;
                    m.issueWidth = width;
                    m.predictor.historyBits = hist;
                    m.perfectPrediction = perfect;
                    m.icache.sizeBytes = kb * 1024;
                    grid.push_back(m);
                }
            }
        }
    }
    return grid;
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *old = ::getenv(name);
        if (old) {
            hadOld = true;
            oldValue = old;
        }
        ::setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldValue.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    bool hadOld = false;
    std::string oldValue;
};

} // namespace

TEST(Lockstep, BatchMatchesSequentialAcrossSuite)
{
    const std::vector<MachineConfig> grid = grid16();
    for (const SpecBenchmark &bench : specint95Suite()) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        const ExecTrace trace = captureTrace(m, testLimits(bench));

        // Conventional machine.
        const std::vector<SimResult> convBatch =
            runConventionalBatch(m, grid, trace);
        ASSERT_EQ(convBatch.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("conv lane " + std::to_string(i));
            expectSameSim(runConventional(m, grid[i], trace),
                          convBatch[i]);
        }

        // Block-structured machine.
        BsaModule bsa =
            enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
        layoutBsaModule(bsa);
        const std::vector<SimResult> bsaBatch =
            runBlockStructuredBatch(bsa, grid, trace);
        ASSERT_EQ(bsaBatch.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("bsa lane " + std::to_string(i));
            expectSameSim(runBlockStructured(bsa, grid[i], trace),
                          bsaBatch[i]);
        }

        // Trace-cache machine: alternate two cache geometries over
        // the same sixteen machine configs.
        TraceCacheConfig tcSmall;
        tcSmall.entries = 16;
        std::vector<TraceCacheConfig> tcConfigs;
        for (std::size_t i = 0; i < grid.size(); ++i)
            tcConfigs.push_back((i & 1) ? tcSmall
                                        : TraceCacheConfig{});
        const std::vector<TraceCacheResult> tcBatch =
            runTraceCacheBatch(m, grid, tcConfigs, trace);
        ASSERT_EQ(tcBatch.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("tcache lane " + std::to_string(i));
            const TraceCacheResult seq =
                runTraceCache(m, grid[i], tcConfigs[i], trace);
            expectSameSim(seq.sim, tcBatch[i].sim);
            EXPECT_EQ(seq.traceHits, tcBatch[i].traceHits);
            EXPECT_EQ(seq.traceMisses, tcBatch[i].traceMisses);
        }
    }
}

TEST(Lockstep, OddBatchSizesMatchFullBatch)
{
    const std::vector<MachineConfig> grid = grid16();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    const std::vector<SimResult> convFull =
        runConventionalBatch(m, grid, trace);
    const std::vector<SimResult> bsaFull =
        runBlockStructuredBatch(bsa, grid, trace);

    // Chunked sub-batches — size 1 exercises the singleton fallback,
    // size 3 leaves a ragged tail, size N is the full batch again.
    for (const std::size_t chunk : {std::size_t(1), std::size_t(3),
                                    grid.size()}) {
        SCOPED_TRACE("chunk size " + std::to_string(chunk));
        for (std::size_t base = 0; base < grid.size(); base += chunk) {
            const std::size_t n =
                std::min(chunk, grid.size() - base);
            const std::vector<MachineConfig> sub(
                grid.begin() + std::ptrdiff_t(base),
                grid.begin() + std::ptrdiff_t(base + n));
            const std::vector<SimResult> convSub =
                runConventionalBatch(m, sub, trace);
            const std::vector<SimResult> bsaSub =
                runBlockStructuredBatch(bsa, sub, trace);
            for (std::size_t i = 0; i < n; ++i) {
                SCOPED_TRACE("lane " + std::to_string(base + i));
                expectSameSim(convFull[base + i], convSub[i]);
                expectSameSim(bsaFull[base + i], bsaSub[i]);
            }
        }
    }
}

/** Grids aimed squarely at the batch drivers' sharing machinery:
 *  literal duplicate configs (collapsed to one lane), perfect-
 *  prediction lanes whose dead predictor geometry differs
 *  (canonicalised into one prediction group), same-predictor lanes
 *  differing only in caches or width (one fetch side, echoed icache),
 *  and several distinct dcache geometries (multiple shared
 *  committed-order dcache streams).  Each lane must still be
 *  bit-identical to its own sequential singleton run. */
TEST(Lockstep, SharedStateGridsMatchSingletons)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    std::vector<MachineConfig> grid;
    MachineConfig base;
    grid.push_back(base);
    grid.push_back(base);  // exact duplicate: dedup path
    {
        // Perfect lanes with different (dead) predictor geometry —
        // effectively identical, and grouped with each other.
        MachineConfig p = base;
        p.perfectPrediction = true;
        p.predictor.historyBits = 4;
        grid.push_back(p);
        p.predictor.historyBits = 14;
        grid.push_back(p);
        // ...unless live state differs: same dead predictor, bigger
        // dcache — same prediction group, private dcache stream.
        p.dcache.sizeBytes = 64 * 1024;
        grid.push_back(p);
    }
    {
        // Same predictor, different width/caches: one prediction
        // group; the two icache geometries split into leader+echo.
        MachineConfig w = base;
        w.issueWidth = 8;
        grid.push_back(w);
        w.icache.sizeBytes = 8 * 1024;
        grid.push_back(w);
        w.dcache.sizeBytes = 4 * 1024;
        grid.push_back(w);
        // Different predictor geometry: its own group.
        w.predictor.historyBits = 6;
        grid.push_back(w);
    }

    const std::vector<SimResult> convBatch =
        runConventionalBatch(m, grid, trace);
    const std::vector<SimResult> bsaBatch =
        runBlockStructuredBatch(bsa, grid, trace);
    ASSERT_EQ(convBatch.size(), grid.size());
    ASSERT_EQ(bsaBatch.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        expectSameSim(runConventional(m, grid[i], trace),
                      convBatch[i]);
        expectSameSim(runBlockStructured(bsa, grid[i], trace),
                      bsaBatch[i]);
    }
}

TEST(Lockstep, PairSweepGroupsByModelAndEnlargement)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));

    PairSweep sweep;
    const std::size_t b = sweep.addBenchmark(m, trace);
    RunConfig shared;
    sweep.addPoint(b, shared);
    RunConfig wider = shared;
    wider.machine.issueWidth = 8;
    sweep.addPoint(b, wider);  // same enlargement: shares the walk
    RunConfig narrow = shared;
    narrow.enlarge.maxFaults = 1;
    sweep.addPoint(b, narrow);  // distinct enlargement: own group
    sweep.plan();

    // One conventional batch (all three points) + two BSA groups.
    EXPECT_EQ(sweep.batchCount(), 3u);
    for (std::size_t i = 0; i < sweep.batchCount(); ++i)
        sweep.runBatch(i);

    const PairResult seqShared = runPair(m, shared, trace);
    const PairResult seqWider = runPair(m, wider, trace);
    const PairResult seqNarrow = runPair(m, narrow, trace);
    expectSameSim(seqShared.conv, sweep.results()[0].conv);
    expectSameSim(seqShared.bsa, sweep.results()[0].bsa);
    expectSameSim(seqWider.conv, sweep.results()[1].conv);
    expectSameSim(seqWider.bsa, sweep.results()[1].bsa);
    expectSameSim(seqNarrow.conv, sweep.results()[2].conv);
    expectSameSim(seqNarrow.bsa, sweep.results()[2].bsa);
    EXPECT_EQ(seqNarrow.bsaCodeBytes, sweep.results()[2].bsaCodeBytes);
    EXPECT_EQ(seqShared.convCodeBytes,
              sweep.results()[0].convCodeBytes);
    EXPECT_EQ(seqShared.dynOps, sweep.results()[0].dynOps);
}

TEST(Lockstep, SweepIsDeterministicAcrossJobs)
{
    const auto suite = specint95Suite();
    std::vector<Module> modules;
    std::vector<ExecTrace> traces;
    for (std::size_t i = 0; i < 3; ++i) {
        modules.push_back(generateWorkload(suite[i].params));
        traces.push_back(
            captureTrace(modules[i], testLimits(suite[i])));
    }

    auto runSweep = [&](const char *jobs) {
        ScopedEnv env("BSISA_JOBS", jobs);
        PairSweep sweep;
        for (std::size_t i = 0; i < modules.size(); ++i) {
            const std::size_t b =
                sweep.addBenchmark(modules[i], traces[i]);
            for (const unsigned hist : {4u, 8u, 12u, 16u}) {
                RunConfig config;
                config.machine.predictor.historyBits = hist;
                sweep.addPoint(b, config);
            }
        }
        sweep.plan();
        parallelFor(sweep.batchCount(),
                    [&](std::size_t bi) { sweep.runBatch(bi); });
        return sweep.results();
    };

    const std::vector<PairResult> serial = runSweep("1");
    const std::vector<PairResult> fanned = runSweep("3");
    ASSERT_EQ(serial.size(), fanned.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameSim(serial[i].conv, fanned[i].conv);
        expectSameSim(serial[i].bsa, fanned[i].bsa);
    }
}
