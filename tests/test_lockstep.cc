/**
 * @file
 * Tests for the lockstep multi-config sweep engine (sim/lockstep.hh)
 * and its runner-level batch APIs (exp/runner.hh).
 *
 * The contract under test is bit-equality: a batched walk that
 * advances N machine configs per trace event must produce exactly the
 * SimResult of running each config through the sequential per-config
 * replay, for every fetch model, every batch size (including odd
 * splits and the singleton fallback), and any BSISA_JOBS fan-out of a
 * sweep's batches.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cache/trace_cache.hh"
#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "fuzz/corpus.hh"
#include "sim/fetch_outcome.hh"
#include "sim/trace.hh"
#include "support/parallel.hh"
#include "support/simd_dispatch.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

Interp::Limits
testLimits(const SpecBenchmark &bench)
{
    Interp::Limits limits;
    limits.maxOps = bench.scaledBudget(4000);
    return limits;
}

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
}

void
expectSameSim(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.retiredUnits, b.retiredUnits);
    EXPECT_EQ(a.wrongPathOps, b.wrongPathOps);
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.trapMispredicts, b.trapMispredicts);
    EXPECT_EQ(a.faultMispredicts, b.faultMispredicts);
    EXPECT_EQ(a.cascadeHops, b.cascadeHops);
    EXPECT_EQ(a.stallRedirect, b.stallRedirect);
    EXPECT_EQ(a.stallWindow, b.stallWindow);
    EXPECT_EQ(a.stallIcache, b.stallIcache);
    EXPECT_EQ(a.peakWindowUnits, b.peakWindowUnits);
    EXPECT_EQ(a.peakWindowOps, b.peakWindowOps);
    expectSameCacheStats(a.icache, b.icache);
    expectSameCacheStats(a.dcache, b.dcache);
}

/** Sixteen configs disagreeing on issue width, predictor geometry,
 *  prediction mode, and icache size, so lockstep lanes diverge hard
 *  (different redirects, window pressure, and fill behavior). */
std::vector<MachineConfig>
grid16()
{
    std::vector<MachineConfig> grid;
    for (const unsigned width : {8u, 16u}) {
        for (const unsigned hist : {8u, 12u}) {
            for (const bool perfect : {false, true}) {
                for (const unsigned kb : {16u, 64u}) {
                    MachineConfig m;
                    m.issueWidth = width;
                    m.predictor.historyBits = hist;
                    m.perfectPrediction = perfect;
                    m.icache.sizeBytes = kb * 1024;
                    grid.push_back(m);
                }
            }
        }
    }
    return grid;
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *old = ::getenv(name);
        if (old) {
            hadOld = true;
            oldValue = old;
        }
        ::setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldValue.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    bool hadOld = false;
    std::string oldValue;
};

} // namespace

TEST(Lockstep, BatchMatchesSequentialAcrossSuite)
{
    const std::vector<MachineConfig> grid = grid16();
    for (const SpecBenchmark &bench : specint95Suite()) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        const ExecTrace trace = captureTrace(m, testLimits(bench));

        // Conventional machine.
        const std::vector<SimResult> convBatch =
            runConventionalBatch(m, grid, trace);
        ASSERT_EQ(convBatch.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("conv lane " + std::to_string(i));
            expectSameSim(runConventional(m, grid[i], trace),
                          convBatch[i]);
        }

        // Block-structured machine.
        BsaModule bsa =
            enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
        layoutBsaModule(bsa);
        const std::vector<SimResult> bsaBatch =
            runBlockStructuredBatch(bsa, grid, trace);
        ASSERT_EQ(bsaBatch.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("bsa lane " + std::to_string(i));
            expectSameSim(runBlockStructured(bsa, grid[i], trace),
                          bsaBatch[i]);
        }

        // Trace-cache machine: alternate two cache geometries over
        // the same sixteen machine configs.
        TraceCacheConfig tcSmall;
        tcSmall.entries = 16;
        std::vector<TraceCacheConfig> tcConfigs;
        for (std::size_t i = 0; i < grid.size(); ++i)
            tcConfigs.push_back((i & 1) ? tcSmall
                                        : TraceCacheConfig{});
        const std::vector<TraceCacheResult> tcBatch =
            runTraceCacheBatch(m, grid, tcConfigs, trace);
        ASSERT_EQ(tcBatch.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("tcache lane " + std::to_string(i));
            const TraceCacheResult seq =
                runTraceCache(m, grid[i], tcConfigs[i], trace);
            expectSameSim(seq.sim, tcBatch[i].sim);
            EXPECT_EQ(seq.traceHits, tcBatch[i].traceHits);
            EXPECT_EQ(seq.traceMisses, tcBatch[i].traceMisses);
        }
    }
}

TEST(Lockstep, OddBatchSizesMatchFullBatch)
{
    const std::vector<MachineConfig> grid = grid16();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    const std::vector<SimResult> convFull =
        runConventionalBatch(m, grid, trace);
    const std::vector<SimResult> bsaFull =
        runBlockStructuredBatch(bsa, grid, trace);

    // Chunked sub-batches — size 1 exercises the singleton fallback,
    // size 3 leaves a ragged tail, size N is the full batch again.
    for (const std::size_t chunk : {std::size_t(1), std::size_t(3),
                                    grid.size()}) {
        SCOPED_TRACE("chunk size " + std::to_string(chunk));
        for (std::size_t base = 0; base < grid.size(); base += chunk) {
            const std::size_t n =
                std::min(chunk, grid.size() - base);
            const std::vector<MachineConfig> sub(
                grid.begin() + std::ptrdiff_t(base),
                grid.begin() + std::ptrdiff_t(base + n));
            const std::vector<SimResult> convSub =
                runConventionalBatch(m, sub, trace);
            const std::vector<SimResult> bsaSub =
                runBlockStructuredBatch(bsa, sub, trace);
            for (std::size_t i = 0; i < n; ++i) {
                SCOPED_TRACE("lane " + std::to_string(base + i));
                expectSameSim(convFull[base + i], convSub[i]);
                expectSameSim(bsaFull[base + i], bsaSub[i]);
            }
        }
    }
}

/** Grids aimed squarely at the batch drivers' sharing machinery:
 *  literal duplicate configs (collapsed to one lane), perfect-
 *  prediction lanes whose dead predictor geometry differs
 *  (canonicalised into one prediction group), same-predictor lanes
 *  differing only in caches or width (one fetch side, echoed icache),
 *  and several distinct dcache geometries (multiple shared
 *  committed-order dcache streams).  Each lane must still be
 *  bit-identical to its own sequential singleton run. */
TEST(Lockstep, SharedStateGridsMatchSingletons)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    std::vector<MachineConfig> grid;
    MachineConfig base;
    grid.push_back(base);
    grid.push_back(base);  // exact duplicate: dedup path
    {
        // Perfect lanes with different (dead) predictor geometry —
        // effectively identical, and grouped with each other.
        MachineConfig p = base;
        p.perfectPrediction = true;
        p.predictor.historyBits = 4;
        grid.push_back(p);
        p.predictor.historyBits = 14;
        grid.push_back(p);
        // ...unless live state differs: same dead predictor, bigger
        // dcache — same prediction group, private dcache stream.
        p.dcache.sizeBytes = 64 * 1024;
        grid.push_back(p);
    }
    {
        // Same predictor, different width/caches: one prediction
        // group; the two icache geometries split into leader+echo.
        MachineConfig w = base;
        w.issueWidth = 8;
        grid.push_back(w);
        w.icache.sizeBytes = 8 * 1024;
        grid.push_back(w);
        w.dcache.sizeBytes = 4 * 1024;
        grid.push_back(w);
        // Different predictor geometry: its own group.
        w.predictor.historyBits = 6;
        grid.push_back(w);
    }

    const std::vector<SimResult> convBatch =
        runConventionalBatch(m, grid, trace);
    const std::vector<SimResult> bsaBatch =
        runBlockStructuredBatch(bsa, grid, trace);
    ASSERT_EQ(convBatch.size(), grid.size());
    ASSERT_EQ(bsaBatch.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        expectSameSim(runConventional(m, grid[i], trace),
                      convBatch[i]);
        expectSameSim(runBlockStructured(bsa, grid[i], trace),
                      bsaBatch[i]);
    }
}

TEST(Lockstep, PairSweepGroupsByModelAndEnlargement)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));

    PairSweep sweep;
    const std::size_t b = sweep.addBenchmark(m, trace);
    RunConfig shared;
    sweep.addPoint(b, shared);
    RunConfig wider = shared;
    wider.machine.issueWidth = 8;
    sweep.addPoint(b, wider);  // same enlargement: shares the walk
    RunConfig narrow = shared;
    narrow.enlarge.maxFaults = 1;
    sweep.addPoint(b, narrow);  // distinct enlargement: own group
    sweep.plan();

    // One conventional batch (all three points) + two BSA groups.
    EXPECT_EQ(sweep.batchCount(), 3u);
    for (std::size_t i = 0; i < sweep.batchCount(); ++i)
        sweep.runBatch(i);

    const PairResult seqShared = runPair(m, shared, trace);
    const PairResult seqWider = runPair(m, wider, trace);
    const PairResult seqNarrow = runPair(m, narrow, trace);
    expectSameSim(seqShared.conv, sweep.results()[0].conv);
    expectSameSim(seqShared.bsa, sweep.results()[0].bsa);
    expectSameSim(seqWider.conv, sweep.results()[1].conv);
    expectSameSim(seqWider.bsa, sweep.results()[1].bsa);
    expectSameSim(seqNarrow.conv, sweep.results()[2].conv);
    expectSameSim(seqNarrow.bsa, sweep.results()[2].bsa);
    EXPECT_EQ(seqNarrow.bsaCodeBytes, sweep.results()[2].bsaCodeBytes);
    EXPECT_EQ(seqShared.convCodeBytes,
              sweep.results()[0].convCodeBytes);
    EXPECT_EQ(seqShared.dynOps, sweep.results()[0].dynOps);
}

/** Thirty-three mutually divergent configs, so prefix batches cover
 *  every lane count a kernel can see around its width boundaries:
 *  1 (singleton fallback), 2..7 (narrow batches the vector kernels
 *  delegate to the scalar path), 8 and multiples (whole vector
 *  quads), ragged tails, and 33 (> half a 64-lane chunk, odd). */
std::vector<MachineConfig>
grid33()
{
    std::vector<MachineConfig> grid;
    for (unsigned i = 0; i < 33; ++i) {
        MachineConfig m;
        m.issueWidth = 4u << (i % 3);
        m.predictor.historyBits = 4 + (i % 11);
        m.perfectPrediction = (i % 7) == 3;
        m.icache.sizeBytes = (8u << (i % 4)) * 1024;
        m.dcache.sizeBytes = (4u << (i % 3)) * 1024;
        grid.push_back(m);
    }
    return grid;
}

TEST(Lockstep, EveryLaneCountOneThroughThirtyThree)
{
    const std::vector<MachineConfig> grid = grid33();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    std::vector<SimResult> convSeq, bsaSeq;
    for (const MachineConfig &config : grid) {
        convSeq.push_back(runConventional(m, config, trace));
        bsaSeq.push_back(runBlockStructured(bsa, config, trace));
    }

    for (std::size_t n = 1; n <= grid.size(); ++n) {
        SCOPED_TRACE("lane count " + std::to_string(n));
        const std::vector<MachineConfig> prefix(
            grid.begin(), grid.begin() + std::ptrdiff_t(n));
        const std::vector<SimResult> conv =
            runConventionalBatch(m, prefix, trace);
        const std::vector<SimResult> bsa2 =
            runBlockStructuredBatch(bsa, prefix, trace);
        ASSERT_EQ(conv.size(), n);
        ASSERT_EQ(bsa2.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            expectSameSim(convSeq[i], conv[i]);
            expectSameSim(bsaSeq[i], bsa2[i]);
        }
    }
}

/** Three-way path equality at every lane count: the fused cross-group
 *  timing walk (default), the interleaved per-group reference
 *  (BSISA_FORCE_PER_GROUP), and the lane-major reference loop
 *  (BSISA_FORCE_LANE_MAJOR) must be bit-identical for both fetch
 *  models over grid33 prefixes — covering single-group prefixes,
 *  prefixes whose groups fuse to full width, and ragged group tails. */
TEST(Lockstep, FusedPerGroupAndLaneMajorAgree)
{
    const std::vector<MachineConfig> grid = grid33();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    for (std::size_t n = 1; n <= grid.size(); ++n) {
        SCOPED_TRACE("lane count " + std::to_string(n));
        const std::vector<MachineConfig> prefix(
            grid.begin(), grid.begin() + std::ptrdiff_t(n));

        const std::vector<SimResult> convFused =
            runConventionalBatch(m, prefix, trace);
        const std::vector<SimResult> bsaFused =
            runBlockStructuredBatch(bsa, prefix, trace);

        std::vector<SimResult> convPerGroup, bsaPerGroup;
        {
            ScopedEnv perGroup("BSISA_FORCE_PER_GROUP", "1");
            convPerGroup = runConventionalBatch(m, prefix, trace);
            bsaPerGroup = runBlockStructuredBatch(bsa, prefix, trace);
        }
        std::vector<SimResult> convLaneMajor, bsaLaneMajor;
        {
            ScopedEnv laneMajor("BSISA_FORCE_LANE_MAJOR", "1");
            convLaneMajor = runConventionalBatch(m, prefix, trace);
            bsaLaneMajor = runBlockStructuredBatch(bsa, prefix, trace);
        }

        for (std::size_t i = 0; i < n; ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            expectSameSim(convFused[i], convPerGroup[i]);
            expectSameSim(convFused[i], convLaneMajor[i]);
            expectSameSim(bsaFused[i], bsaPerGroup[i]);
            expectSameSim(bsaFused[i], bsaLaneMajor[i]);
        }
    }
}

/** The decoupled drivers' instrumentation: grid16 dedups to twelve
 *  lanes in three prediction groups (hist8, hist12, perfect), so the
 *  fused walk must issue batches wider than any single four-lane
 *  group, the memoized decode must be hit more often than it fills,
 *  and the conventional pre-pass must run each group's predictor
 *  exactly once per trace event. */
TEST(Lockstep, FetchStatsReportFusionAndMemoReuse)
{
    const std::vector<MachineConfig> grid = grid16();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    runBlockStructuredBatch(bsa, grid, trace);
    {
        const LockstepFetchStats &fs = lockstepLastFetchStats();
        EXPECT_TRUE(fs.fused);
        EXPECT_EQ(fs.groups, 3u);
        EXPECT_EQ(fs.lanes, 12u);
        // The fusion satellite: cross-group batches must exceed the
        // four-lane width a prediction group caps out at.
        EXPECT_GT(fs.maxBatchLanes, 4u);
        EXPECT_GT(fs.fetchSteps, 0u);
        // Memo hit rate: predictSuccessor and captureStep both probe
        // the per-position decode memo, so lookups run about twice
        // the computes (each position is filled at most once).
        EXPECT_GT(fs.memoComputes, 0u);
        EXPECT_GT(fs.memoLookups, fs.memoComputes);
        EXPECT_GE(fs.memoLookups + fs.groups, 2 * fs.memoComputes);
        EXPECT_GT(fs.timingBatches, 0u);
        EXPECT_GT(fs.timingLaneSteps, fs.fetchSteps);
    }

    {
        ScopedEnv perGroup("BSISA_FORCE_PER_GROUP", "1");
        runBlockStructuredBatch(bsa, grid, trace);
        const LockstepFetchStats &fs = lockstepLastFetchStats();
        EXPECT_FALSE(fs.fused);
        // The interleaved reference steps one group at a time, so it
        // can never exceed the widest group.
        EXPECT_LE(fs.maxBatchLanes, 4u);
    }

    runConventionalBatch(m, grid, trace);
    {
        const LockstepFetchStats &fs = lockstepLastFetchStats();
        EXPECT_TRUE(fs.fused);
        EXPECT_EQ(fs.groups, 3u);
        EXPECT_EQ(fs.lanes, 12u);
        // Conventional units are the trace events themselves: the
        // pre-pass walks each group's predictor once per event.
        EXPECT_EQ(fs.fetchSteps, trace.eventCount * fs.groups);
        EXPECT_EQ(fs.maxBatchLanes, 12u);
    }
}

/** A capture budget too small for the fused drivers' worst-case
 *  stream reservations must fall back to the streaming per-group
 *  driver — with the stats reporting the fallback and the results
 *  staying bit-identical to the fused walk. */
TEST(Lockstep, CaptureBudgetFallsBackToPerGroup)
{
    const std::vector<MachineConfig> grid = grid16();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    const std::vector<SimResult> convFused =
        runConventionalBatch(m, grid, trace);
    EXPECT_TRUE(lockstepLastFetchStats().fused);
    const std::vector<SimResult> bsaFused =
        runBlockStructuredBatch(bsa, grid, trace);
    EXPECT_TRUE(lockstepLastFetchStats().fused);

    ScopedEnv budget("BSISA_CAPTURE_BUDGET", "1");
    const std::vector<SimResult> convTight =
        runConventionalBatch(m, grid, trace);
    EXPECT_FALSE(lockstepLastFetchStats().fused);
    const std::vector<SimResult> bsaTight =
        runBlockStructuredBatch(bsa, grid, trace);
    EXPECT_FALSE(lockstepLastFetchStats().fused);

    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        expectSameSim(convFused[i], convTight[i]);
        expectSameSim(bsaFused[i], bsaTight[i]);
    }
}

/** Restores the environment-driven kernel selection on scope exit, so
 *  a failing test cannot leak a forced kernel into later tests. */
class ScopedSimdReset
{
  public:
    ~ScopedSimdReset() { simdReset(); }
};

TEST(Lockstep, ScalarSimdAndLaneMajorPathsAgree)
{
    const std::vector<MachineConfig> grid = grid16();
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));
    BsaModule bsa = enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
    layoutBsaModule(bsa);

    const ScopedSimdReset restore;

    ASSERT_TRUE(simdSetMode(SimdMode::Scalar));
    EXPECT_STREQ(simdKernels().name, "scalar");
    const std::vector<SimResult> convScalar =
        runConventionalBatch(m, grid, trace);
    const std::vector<SimResult> bsaScalar =
        runBlockStructuredBatch(bsa, grid, trace);

    // The lane-major reference loop (the pre-op-major structure) must
    // agree with the op-major scalar kernel.  The switch is read when
    // the batch pipelines are constructed, so a scoped environment
    // variable around the batch call selects it.
    {
        ScopedEnv laneMajor("BSISA_FORCE_LANE_MAJOR", "1");
        const std::vector<SimResult> convRef =
            runConventionalBatch(m, grid, trace);
        const std::vector<SimResult> bsaRef =
            runBlockStructuredBatch(bsa, grid, trace);
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            expectSameSim(convRef[i], convScalar[i]);
            expectSameSim(bsaRef[i], bsaScalar[i]);
        }
    }

    // BSISA_FORCE_SCALAR must pin the scalar kernel through the
    // environment-driven selection path as well.
    {
        ScopedEnv force("BSISA_FORCE_SCALAR", "1");
        simdReset();
        EXPECT_STREQ(simdKernels().name, "scalar");
    }
    simdReset();

    if (!simdSetMode(SimdMode::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this host/build";
    EXPECT_STREQ(simdKernels().name, "avx2");
    const std::vector<SimResult> convSimd =
        runConventionalBatch(m, grid, trace);
    const std::vector<SimResult> bsaSimd =
        runBlockStructuredBatch(bsa, grid, trace);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        expectSameSim(convScalar[i], convSimd[i]);
        expectSameSim(bsaScalar[i], bsaSimd[i]);
    }
}

/** Checked-in fuzz-corpus programs (generator-produced control-flow
 *  shapes the synthetic SPEC workloads do not hit) replayed through
 *  the lockstep engine under both kernel paths, against sequential
 *  singletons as the oracle. */
TEST(Lockstep, FuzzCorpusReplayMatchesUnderBothKernels)
{
    const std::vector<std::string> names =
        fuzz::listCorpus(BSISA_FUZZ_CORPUS_DIR);
    ASSERT_FALSE(names.empty());

    // Eight lanes: one vector's worth plus divergent behavior.
    std::vector<MachineConfig> grid;
    for (unsigned i = 0; i < 8; ++i) {
        MachineConfig config;
        config.issueWidth = (i & 1) ? 16 : 4;
        config.predictor.historyBits = 4 + 2 * (i % 4);
        config.icache.sizeBytes = (i & 2) ? 8 * 1024 : 64 * 1024;
        grid.push_back(config);
    }

    Interp::Limits limits;
    limits.maxOps = 1u << 18;

    const ScopedSimdReset restore;
    const bool haveAvx2 = simdAvx2Kernels() != nullptr;

    // Every fifth entry keeps the walk cheap while still covering
    // several generator profiles (names sort by profile).
    for (std::size_t ni = 0; ni < names.size(); ni += 5) {
        const std::string &name = names[ni];
        SCOPED_TRACE(name);
        std::string source;
        fuzz::Expectation want;
        ASSERT_TRUE(fuzz::readCorpusEntry(BSISA_FUZZ_CORPUS_DIR, name,
                                          source, want));
        const Module m = compileBlockCOrDie(source);
        const ExecTrace trace = captureTrace(m, limits);
        BsaModule bsa =
            enlargeModule(m, EnlargeConfig{}, nullptr, nullptr);
        layoutBsaModule(bsa);

        std::vector<SimResult> convSeq, bsaSeq;
        for (const MachineConfig &config : grid) {
            convSeq.push_back(runConventional(m, config, trace));
            bsaSeq.push_back(runBlockStructured(bsa, config, trace));
        }

        for (const SimdMode mode : {SimdMode::Scalar, SimdMode::Avx2}) {
            if (mode == SimdMode::Avx2 && !haveAvx2)
                continue;
            SCOPED_TRACE(mode == SimdMode::Avx2 ? "avx2" : "scalar");
            ASSERT_TRUE(simdSetMode(mode));
            const std::vector<SimResult> conv =
                runConventionalBatch(m, grid, trace);
            const std::vector<SimResult> bsaBatch =
                runBlockStructuredBatch(bsa, grid, trace);
            for (std::size_t i = 0; i < grid.size(); ++i) {
                SCOPED_TRACE("lane " + std::to_string(i));
                expectSameSim(convSeq[i], conv[i]);
                expectSameSim(bsaSeq[i], bsaBatch[i]);
            }
        }
    }
}

TEST(Lockstep, PairSweepHonorsBatchMaxCap)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const ExecTrace trace = captureTrace(m, testLimits(suite[0]));

    std::vector<RunConfig> configs;
    for (const unsigned hist : {4u, 6u, 8u, 12u, 16u}) {
        RunConfig config;
        config.machine.predictor.historyBits = hist;
        configs.push_back(config);
    }

    std::vector<PairResult> uncapped;
    {
        PairSweep sweep;
        const std::size_t b = sweep.addBenchmark(m, trace);
        for (const RunConfig &config : configs)
            sweep.addPoint(b, config);
        sweep.plan();
        // One conventional batch + one BSA group.
        EXPECT_EQ(sweep.batchCount(), 2u);
        for (std::size_t i = 0; i < sweep.batchCount(); ++i)
            sweep.runBatch(i);
        uncapped = sweep.results();
    }

    ScopedEnv cap("BSISA_BATCH_MAX", "2");
    PairSweep sweep;
    const std::size_t b = sweep.addBenchmark(m, trace);
    for (const RunConfig &config : configs)
        sweep.addPoint(b, config);
    sweep.plan();
    // Five points split into ceil(5/2) = 3 chunks per model.
    EXPECT_EQ(sweep.batchCount(), 6u);
    for (std::size_t i = 0; i < sweep.batchCount(); ++i)
        sweep.runBatch(i);

    ASSERT_EQ(sweep.results().size(), uncapped.size());
    for (std::size_t i = 0; i < uncapped.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameSim(uncapped[i].conv, sweep.results()[i].conv);
        expectSameSim(uncapped[i].bsa, sweep.results()[i].bsa);
    }
}

TEST(Lockstep, SweepIsDeterministicAcrossJobs)
{
    const auto suite = specint95Suite();
    std::vector<Module> modules;
    std::vector<ExecTrace> traces;
    for (std::size_t i = 0; i < 3; ++i) {
        modules.push_back(generateWorkload(suite[i].params));
        traces.push_back(
            captureTrace(modules[i], testLimits(suite[i])));
    }

    auto runSweep = [&](const char *jobs) {
        ScopedEnv env("BSISA_JOBS", jobs);
        PairSweep sweep;
        for (std::size_t i = 0; i < modules.size(); ++i) {
            const std::size_t b =
                sweep.addBenchmark(modules[i], traces[i]);
            for (const unsigned hist : {4u, 8u, 12u, 16u}) {
                RunConfig config;
                config.machine.predictor.historyBits = hist;
                sweep.addPoint(b, config);
            }
        }
        sweep.plan();
        parallelFor(sweep.batchCount(),
                    [&](std::size_t bi) { sweep.runBatch(bi); });
        return sweep.results();
    };

    const std::vector<PairResult> serial = runSweep("1");
    const std::vector<PairResult> fanned = runSweep("3");
    ASSERT_EQ(serial.size(), fanned.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameSim(serial[i].conv, fanned[i].conv);
        expectSameSim(serial[i].bsa, fanned[i].bsa);
    }
}
