/**
 * @file
 * Tests for the out-of-order backend (sim/ooo): RAT checkpoint
 * round-trips under random squash points, LSQ forwarding and
 * partial-overlap classification, directed engine regressions on
 * synthetic fetch streams, the commit-order digest contract, and
 * determinism under BSISA_JOBS fanning.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/bsa_source.hh"
#include "sim/conv_source.hh"
#include "sim/ooo/lsq.hh"
#include "sim/ooo/ooo.hh"
#include "sim/ooo/rat.hh"
#include "sim/trace.hh"
#include "support/parallel.hh"
#include "support/rng.hh"

using namespace bsisa;

namespace
{

/** Branchy, memory-heavy program exercising the whole backend. */
const char *kWorkload = R"(
    var d[64];
    var out[64];
    fn helper(x, i) {
        var t = x + i;
        if (d[i & 63] & 1) { t = t * 3 + 1; } else { t = t + 7; }
        if (d[(i + 7) & 63] < 8) { t = t ^ i; }
        out[i & 63] = t + d[(t + i) & 63];
        return t & 0xffff;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 300; i = i + 1) {
            acc = acc + helper(acc, i);
            acc = acc & 0xfffff;
        }
        return acc;
    }
)";

Module
workloadModule()
{
    Module m = compileBlockCOrDie(kWorkload);
    Rng rng(7);
    for (auto &word : m.data)
        word = rng.nextBelow(16);
    return m;
}

bool
simEq(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.retiredOps == b.retiredOps &&
           a.retiredUnits == b.retiredUnits &&
           a.wrongPathOps == b.wrongPathOps &&
           a.predictions == b.predictions &&
           a.mispredicts == b.mispredicts &&
           a.stallRedirect == b.stallRedirect &&
           a.stallWindow == b.stallWindow &&
           a.stallIcache == b.stallIcache &&
           a.peakWindowUnits == b.peakWindowUnits &&
           a.peakWindowOps == b.peakWindowOps &&
           a.icache.accesses == b.icache.accesses &&
           a.icache.misses == b.icache.misses &&
           a.dcache.accesses == b.dcache.accesses &&
           a.dcache.misses == b.dcache.misses;
}

/** Fixed-stream fetch source for directed engine tests.  The decoded
 *  ops and address arrays live in the test and outlive the source. */
class VecSource : public FetchSource
{
  public:
    std::vector<TimingUnit> units;

    bool
    next(TimingUnit &unit) override
    {
        if (at >= units.size())
            return false;
        unit = units[at++];
        return true;
    }
    void rewind() { at = 0; }

    std::uint64_t predictions() const override { return 0; }
    std::uint64_t mispredicts() const override { return 0; }
    std::uint64_t trapMispredicts() const override { return 0; }
    std::uint64_t faultMispredicts() const override { return 0; }
    std::uint64_t cascadeHops() const override { return 0; }

  private:
    std::size_t at = 0;
};

DecodedOp
aluOp(std::uint8_t src1, std::uint8_t src2, std::uint8_t dst)
{
    DecodedOp op;
    op.src1 = src1;
    op.src2 = src2;
    op.dst = dst;
    op.srcCount = 2;
    op.latency = 1;
    return op;
}

DecodedOp
loadOp(std::uint8_t addrReg, std::uint8_t dst)
{
    DecodedOp op;
    op.src1 = addrReg;
    op.dst = dst;
    op.srcCount = 1;
    op.latency = 2;
    op.flags = opIsMem | opIsLoad;
    return op;
}

DecodedOp
storeOp(std::uint8_t addrReg, std::uint8_t valReg)
{
    DecodedOp op;
    op.src1 = addrReg;
    op.src2 = valReg;
    op.srcCount = 2;
    op.latency = 1;
    op.flags = opIsMem;
    return op;
}

TimingUnit
unitOf(std::uint64_t pc, const std::vector<DecodedOp> &ops,
       const std::vector<std::uint64_t> &addrs)
{
    TimingUnit u;
    u.pc = pc;
    u.bytes = std::uint32_t(ops.size()) * 8;
    u.ops = ops.data();
    u.opCount = std::uint32_t(ops.size());
    u.memAddrs = addrs.data();
    u.memCount = std::uint32_t(addrs.size());
    return u;
}

} // namespace

// ------------------------------------------------------------- RAT

TEST(Rat, RenameEvictsAndReleaseRestoresCapacity)
{
    RegAliasTable rat(40);  // 7 spare registers
    const std::size_t spare = rat.freeCount();
    EXPECT_EQ(spare, 40u - RegAliasTable::mappedRegs);

    const std::uint16_t before = rat.lookup(5);
    const RegAliasTable::Alloc a = rat.rename(5, 10);
    EXPECT_EQ(a.prev, before);
    EXPECT_EQ(rat.lookup(5), a.phys);
    EXPECT_NE(a.phys, before);
    EXPECT_GE(a.ready, 10u);
    EXPECT_EQ(rat.freeCount(), spare - 1);

    rat.release(a.prev, 20);
    EXPECT_EQ(rat.freeCount(), spare);

    // The released register comes back with its availability stamp.
    std::uint16_t phys = 0;
    for (std::size_t i = 0; i < spare; ++i) {
        const RegAliasTable::Alloc b = rat.rename(6, 0);
        rat.release(b.prev, 0);
        phys = b.phys;
        if (phys == a.prev) {
            EXPECT_EQ(b.ready, 20u);
            return;
        }
    }
    FAIL() << "released register never reallocated";
}

TEST(Rat, CheckpointRestoreRoundTripUnderRandomSquashPoints)
{
    Rng rng(1234);
    RegAliasTable rat(96);
    const std::size_t spare = rat.freeCount();
    std::uint64_t cycle = 0;

    for (int round = 0; round < 200; ++round) {
        // Committed-path renames between checkpoints.
        const unsigned committed = rng.nextBelow(4);
        for (unsigned i = 0; i < committed; ++i) {
            const RegNum dst =
                RegNum(1 + rng.nextBelow(RegAliasTable::mappedRegs - 1));
            const RegAliasTable::Alloc a = rat.rename(dst, cycle);
            rat.release(a.prev, cycle + 3);
            ++cycle;
        }

        std::uint16_t snapshot[RegAliasTable::mappedRegs];
        for (unsigned r = 0; r < RegAliasTable::mappedRegs; ++r)
            snapshot[r] = rat.lookup(RegNum(r));
        const std::size_t freeBefore = rat.freeCount();

        const RegAliasTable::Checkpoint cp = rat.checkpoint();
        const unsigned wrong = 1 + rng.nextBelow(12);
        for (unsigned i = 0; i < wrong; ++i) {
            const RegNum dst =
                RegNum(1 + rng.nextBelow(RegAliasTable::mappedRegs - 1));
            rat.rename(dst, cycle + i);
        }
        const std::uint64_t squash = cycle + rng.nextBelow(20);
        rat.restore(cp, squash);

        for (unsigned r = 0; r < RegAliasTable::mappedRegs; ++r)
            EXPECT_EQ(rat.lookup(RegNum(r)), snapshot[r])
                << "round " << round << " register " << r;
        EXPECT_EQ(rat.freeCount(), freeBefore) << "round " << round;
    }
    EXPECT_EQ(rat.freeCount(), spare);
}

// ------------------------------------------------------------- LSQ

TEST(Lsq, ForwardsExactMatchFromYoungestStore)
{
    LoadStoreQueue lsq(8);
    lsq.pushStore(100, 5, 9);
    lsq.pushStore(100, 6, 17);  // younger store, same address

    const LoadStoreQueue::Conflict c = lsq.searchOlderStores(100);
    EXPECT_EQ(c.kind, LoadStoreQueue::ConflictKind::Forward);
    EXPECT_EQ(c.dataReady, 17u);  // youngest match wins
}

TEST(Lsq, PartialOverlapWaitsInsteadOfForwarding)
{
    LoadStoreQueue lsq(8);
    lsq.pushStore(100, 5, 9);

    // Offset inside the access width: intersecting byte ranges with
    // different base addresses must classify as Overlap, never
    // Forward (forwarding would splice bytes from two sources).
    for (const std::uint64_t addr : {96ull, 97ull, 99ull, 101ull,
                                     104ull, 107ull}) {
        const LoadStoreQueue::Conflict c = lsq.searchOlderStores(addr);
        EXPECT_EQ(c.kind, LoadStoreQueue::ConflictKind::Overlap)
            << "addr " << addr;
    }
    // One full access width away: disjoint.
    EXPECT_EQ(lsq.searchOlderStores(108).kind,
              LoadStoreQueue::ConflictKind::None);
    EXPECT_EQ(lsq.searchOlderStores(92).kind,
              LoadStoreQueue::ConflictKind::None);
}

TEST(Lsq, OlderStoreAddressesGateLoads)
{
    LoadStoreQueue lsq(8);
    EXPECT_EQ(lsq.olderStoreAddrReady(), 0u);
    lsq.pushStore(100, 12, 14);
    lsq.pushStore(200, 31, 33);
    EXPECT_EQ(lsq.olderStoreAddrReady(), 31u);
    lsq.pushLoad(300, 40);  // loads do not gate later loads
    EXPECT_EQ(lsq.olderStoreAddrReady(), 31u);
}

// ---------------------------------------------------- OoO engine

TEST(Ooo, ForwardingAndPartialOverlapOnSyntheticStream)
{
    // A store to addr 1000 with the load stream behind it in the same
    // unit, so the store is still in flight when the loads dispatch:
    // the load of 1000 forwards (exact match), the load of 1004 is a
    // partial overlap and must stall instead.
    const std::vector<DecodedOp> ops{aluOp(1, 2, 3), storeOp(3, 1),
                                     loadOp(3, 4), loadOp(3, 5)};
    const std::vector<std::uint64_t> addrs{1000, 1000, 1004};

    VecSource source;
    source.units.push_back(unitOf(0x1000, ops, addrs));

    MachineConfig machine;
    machine.timingModel = TimingModel::Ooo;
    OooTelemetry tel;
    const SimResult r = simulateOoO(source, machine, &tel);

    EXPECT_EQ(r.retiredOps, 4u);
    EXPECT_EQ(r.retiredUnits, 1u);
    EXPECT_EQ(tel.forwardedLoads, 1u);
    EXPECT_EQ(tel.overlapStallLoads, 1u);
    EXPECT_EQ(tel.youngerForwards, 0u);
    // The forwarded load bypasses the dcache: the store and the
    // overlap load access it, the forwarded load does not.
    EXPECT_EQ(r.dcache.accesses, 2u);
}

TEST(Ooo, ForwardedTimingBeatsMemoryReplayAndOverlapWaits)
{
    // The same unit three times, varying only the load address
    // relative to the in-flight store: exact match (forward),
    // disjoint (dcache access), partial overlap (wait for the store
    // to drain).  Forwarding must never be slower than going to
    // memory, and the overlap variant must be strictly slower than
    // the forwarded one.
    const std::vector<DecodedOp> ops{aluOp(1, 2, 3), storeOp(3, 1),
                                     loadOp(3, 4), aluOp(4, 4, 5)};

    auto cyclesWithLoadAt = [&](std::uint64_t addr) {
        const std::vector<std::uint64_t> addrs{1000, addr};
        VecSource source;
        source.units.push_back(unitOf(0x1000, ops, addrs));
        MachineConfig machine;
        machine.timingModel = TimingModel::Ooo;
        OooTelemetry tel;
        const SimResult r = simulateOoO(source, machine, &tel);
        return std::pair<std::uint64_t, OooTelemetry>(r.cycles, tel);
    };

    const auto forwarded = cyclesWithLoadAt(1000);
    const auto disjoint = cyclesWithLoadAt(5000);
    const auto overlap = cyclesWithLoadAt(1004);
    EXPECT_EQ(forwarded.second.forwardedLoads, 1u);
    EXPECT_EQ(disjoint.second.forwardedLoads, 0u);
    EXPECT_EQ(overlap.second.overlapStallLoads, 1u);
    EXPECT_LE(forwarded.first, disjoint.first);
    EXPECT_GT(overlap.first, forwarded.first);
}

TEST(Ooo, RenameStarvationReclaimsInProgramOrder)
{
    // One unit with far more renames than spare physical registers
    // (40 regs leave 7 spare): the engine must reclaim this unit's
    // own older evictions instead of underflowing the free list.
    std::vector<DecodedOp> ops;
    for (int i = 0; i < 48; ++i)
        ops.push_back(aluOp(1, 2, std::uint8_t(1 + (i % 30))));
    const std::vector<std::uint64_t> noAddrs;

    VecSource source;
    source.units.push_back(unitOf(0x1000, ops, noAddrs));
    source.units.push_back(unitOf(0x2000, ops, noAddrs));

    MachineConfig machine;
    machine.timingModel = TimingModel::Ooo;
    machine.ooo.physRegs = 40;
    OooTelemetry tel;
    const SimResult r = simulateOoO(source, machine, &tel);
    EXPECT_EQ(r.retiredOps, 96u);
    EXPECT_EQ(tel.robOverflows, 0u);
    EXPECT_EQ(tel.commitOrderViolations, 0u);
}

TEST(Ooo, CommitDigestMatchesEmitStreamAcrossMachines)
{
    const Module module = workloadModule();
    Interp::Limits limits;
    limits.maxOps = 1u << 22;
    const ExecTrace trace = captureTrace(module, limits);

    MachineConfig machine;
    machine.timingModel = TimingModel::Ooo;

    const ConvLayout layout(module);
    OooTelemetry tel;
    {
        ConvFetchSource source(module, layout, machine, trace);
        const SimResult r = simulateOoO(source, machine, &tel);
        EXPECT_EQ(r.retiredOps, trace.dynOps);
        EXPECT_EQ(r.retiredUnits, trace.eventCount);
        EXPECT_LE(tel.peakRobOps, machine.ooo.robOps);
        EXPECT_LE(tel.peakLsq, machine.ooo.lsqEntries);
        EXPECT_EQ(tel.robOverflows, 0u);
        EXPECT_EQ(tel.commitOrderViolations, 0u);
        EXPECT_EQ(tel.youngerForwards, 0u);
    }
    {
        // The ROB drains units many next() calls after their emit, so
        // digest equality proves the backend retained every span it
        // needed rather than reading freed memory.
        ConvFetchSource reference(module, layout, machine, trace);
        EXPECT_EQ(tel.commitDigest, fetchStreamDigest(reference));
    }

    const BsaModule bsa = enlargeModule(module, EnlargeConfig{});
    OooTelemetry btel;
    {
        BsaFetchSource source(bsa, machine, trace);
        simulateOoO(source, machine, &btel);
    }
    {
        BsaFetchSource reference(bsa, machine, trace);
        EXPECT_EQ(btel.commitDigest, fetchStreamDigest(reference));
    }
}

TEST(Ooo, DeterministicAcrossRerunsAndJobsFanning)
{
    const Module module = workloadModule();
    Interp::Limits limits;
    limits.maxOps = 1u << 22;
    const ExecTrace trace = captureTrace(module, limits);
    const BsaModule bsa = enlargeModule(module, EnlargeConfig{});

    std::vector<MachineConfig> grid;
    for (const unsigned rob : {64u, 192u}) {
        for (const unsigned lsqE : {8u, 48u}) {
            MachineConfig m;
            m.timingModel = TimingModel::Ooo;
            m.ooo.robOps = rob;
            m.ooo.lsqEntries = lsqE;
            grid.push_back(m);
        }
    }

    auto runGrid = [&](const char *jobs) {
        setenv("BSISA_JOBS", jobs, 1);
        std::vector<SimResult> out(grid.size() * 2);
        parallelFor(grid.size() * 2, [&](std::size_t i) {
            const MachineConfig &m = grid[i / 2];
            out[i] = (i & 1) ? runBlockStructured(bsa, m, trace)
                             : runConventional(module, m, trace);
        });
        return out;
    };
    const char *oldJobs = getenv("BSISA_JOBS");
    const std::string saved = oldJobs ? oldJobs : "";
    const std::vector<SimResult> serial = runGrid("1");
    const std::vector<SimResult> fanned = runGrid("3");
    const std::vector<SimResult> again = runGrid("3");
    if (oldJobs)
        setenv("BSISA_JOBS", saved.c_str(), 1);
    else
        unsetenv("BSISA_JOBS");

    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(simEq(serial[i], fanned[i])) << "point " << i;
        EXPECT_TRUE(simEq(serial[i], again[i])) << "point " << i;
    }
}

TEST(Ooo, MixedModelBatchMatchesPerConfigRuns)
{
    const Module module = workloadModule();
    Interp::Limits limits;
    limits.maxOps = 1u << 22;
    const ExecTrace trace = captureTrace(module, limits);

    std::vector<MachineConfig> mixed(4);
    mixed[1].timingModel = TimingModel::Ooo;
    mixed[2].issueWidth = 8;
    mixed[3].timingModel = TimingModel::Ooo;
    mixed[3].ooo.robOps = 64;

    std::vector<SimResult> seq(mixed.size());
    for (std::size_t i = 0; i < mixed.size(); ++i)
        seq[i] = runConventional(module, mixed[i], trace);
    const std::vector<SimResult> batch =
        runConventionalBatch(module, mixed, trace);
    ASSERT_EQ(batch.size(), mixed.size());
    for (std::size_t i = 0; i < mixed.size(); ++i)
        EXPECT_TRUE(simEq(seq[i], batch[i])) << "lane " << i;

    // The backend must actually reorder: same committed stream, a
    // different cycle count than the abstract window model.
    EXPECT_EQ(seq[0].retiredOps, seq[1].retiredOps);
    EXPECT_NE(seq[0].cycles, seq[1].cycles);
}
