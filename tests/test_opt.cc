/**
 * @file
 * Unit and property tests for the mid-end optimizer.  Each pass is
 * checked both structurally (does it perform the rewrite) and
 * semantically (interpreter equivalence before/after).
 */

#include <gtest/gtest.h>

#include "frontend/compile.hh"
#include "ir/verifier.hh"
#include "opt/inliner.hh"
#include "opt/passes.hh"
#include "sim/interp.hh"
#include "support/rng.hh"

using namespace bsisa;

namespace
{

/** Compile without optimization or allocation. */
Module
rawCompile(const std::string &source)
{
    CompileOptions options;
    options.optimize = false;
    options.allocate = false;
    options.maxBlockOps = 0;
    return compileBlockCOrDie(source, options);
}

struct ExecResult
{
    std::uint64_t exit;
    std::uint64_t checksum;
    std::uint64_t ops;
};

ExecResult
exec(const Module &m)
{
    Interp interp(m);
    interp.run();
    EXPECT_TRUE(interp.halted());
    return {interp.exitValue(), interp.memChecksum(), interp.dynOps()};
}

} // namespace

TEST(ConstFold, FoldsConstantExpressions)
{
    Module m = rawCompile("fn main() { return 2 + 3 * 4; }");
    const std::size_t before = m.numOps();
    const unsigned folded = constantFold(m.functions[m.mainFunc]);
    EXPECT_GT(folded, 0u);
    EXPECT_TRUE(verifyModule(m).empty());
    EXPECT_EQ(exec(m).exit, 14u);
    EXPECT_LE(m.numOps(), before);
}

TEST(ConstFold, FoldsConstantTrapIntoJump)
{
    Module m = rawCompile(
        "fn main() { if (1) { return 5; } return 6; }");
    constantFold(m.functions[m.mainFunc]);
    bool has_trap_with_const = false;
    for (const auto &blk : m.functions[m.mainFunc].blocks)
        for (const auto &op : blk.ops)
            if (op.op == Opcode::Trap)
                has_trap_with_const = true;
    // The single trap had a constant condition, so it must be gone.
    EXPECT_FALSE(has_trap_with_const);
    EXPECT_EQ(exec(m).exit, 5u);
}

TEST(ConstFold, FormsImmediateVariants)
{
    Module m = rawCompile("fn main(){ var x = 40; return x + 2; }");
    // x is a MovI; copy-prop is not needed for AddI formation because
    // the add reads the register holding 2.
    constantFold(m.functions[m.mainFunc]);
    bool has_addi = false;
    for (const auto &blk : m.functions[m.mainFunc].blocks)
        for (const auto &op : blk.ops)
            if (op.op == Opcode::AddI || op.op == Opcode::MovI)
                has_addi = true;
    EXPECT_TRUE(has_addi);
    EXPECT_EQ(exec(m).exit, 42u);
}

TEST(CopyProp, RewritesUses)
{
    Module m = rawCompile("fn main(){ var a = 7; var b = a; return b; }");
    const unsigned rewritten = copyPropagate(m.functions[m.mainFunc]);
    EXPECT_GT(rewritten, 0u);
    EXPECT_EQ(exec(m).exit, 7u);
}

TEST(Cse, EliminatesRepeatedExpression)
{
    Module m = rawCompile(R"(
        var g[4];
        fn main() {
            var i = 1;
            var a = g[i] + g[i];
            return a;
        }
    )");
    Function &f = m.functions[m.mainFunc];
    const unsigned replaced = localCSE(f);
    EXPECT_GT(replaced, 0u);
    EXPECT_EQ(exec(m).exit, 0u);
}

TEST(Cse, StoreInvalidatesLoads)
{
    // g[0] is loaded, stored to, then loaded again: the second load
    // must NOT be CSE'd to the first.
    Module m = rawCompile(R"(
        var g[1];
        fn main() {
            var a = g[0];
            g[0] = 9;
            var b = g[0];
            return a * 100 + b;
        }
    )");
    localCSE(m.functions[m.mainFunc]);
    copyPropagate(m.functions[m.mainFunc]);
    EXPECT_EQ(exec(m).exit, 9u);
}

TEST(Dce, RemovesDeadCode)
{
    Module m = rawCompile(R"(
        fn main() {
            var dead = 3 * 14;
            var alive = 2;
            return alive;
        }
    )");
    Function &f = m.functions[m.mainFunc];
    const std::size_t before = f.numOps();
    const unsigned removed = deadCodeElim(f);
    EXPECT_GT(removed, 0u);
    EXPECT_LT(f.numOps(), before);
    EXPECT_EQ(exec(m).exit, 2u);
}

TEST(Dce, KeepsStoresAndCalls)
{
    Module m = rawCompile(R"(
        var g;
        fn set() { g = 5; return 0; }
        fn main() { set(); return g; }
    )");
    for (auto &f : m.functions)
        deadCodeElim(f);
    EXPECT_EQ(exec(m).exit, 5u);
}

TEST(SimplifyCfg, RemovesUnreachableBlocks)
{
    Module m = rawCompile(R"(
        fn main() {
            return 1;
            return 2;
        }
    )");
    Function &f = m.functions[m.mainFunc];
    const OptStats stats = simplifyCFG(f);
    EXPECT_GT(stats.blocksRemoved, 0u);
    EXPECT_EQ(exec(m).exit, 1u);
}

TEST(SimplifyCfg, MergesStraightLineChains)
{
    Module m = rawCompile("fn main() { if (1) { } return 3; }");
    Function &f = m.functions[m.mainFunc];
    constantFold(f);  // turn the trap into a jmp first
    const std::size_t blocks_before = f.blocks.size();
    simplifyCFG(f);
    EXPECT_LT(f.blocks.size(), blocks_before);
    EXPECT_EQ(exec(m).exit, 3u);
}

TEST(Pipeline, ShrinksTypicalCode)
{
    const std::string src = R"(
        var out[16];
        fn work(n) {
            var t = n * 2;
            var u = n * 2;      // CSE target
            var dead = t * 99;  // DCE target
            var copy = t;       // copy-prop target
            return copy + u + 0 * dead;
        }
        fn main() {
            var acc = 0;
            for (var i = 0; i < 16; i = i + 1) {
                out[i] = work(i);
                acc = acc + out[i];
            }
            return acc;
        }
    )";
    Module raw = rawCompile(src);
    const ExecResult before = exec(raw);
    Module opt = raw;
    const OptStats stats = optimizeModule(opt);
    EXPECT_TRUE(verifyModule(opt).empty());
    const ExecResult after = exec(opt);
    EXPECT_EQ(before.exit, after.exit);
    EXPECT_EQ(before.checksum, after.checksum);
    EXPECT_LT(after.ops, before.ops);
    EXPECT_GT(stats.deadRemoved + stats.cseReplaced + stats.folded, 0u);
}

// --------------------------------------------------------------------
// Inliner (the paper's section-6 extension).
// --------------------------------------------------------------------

namespace
{

unsigned
countCalls(const Module &m)
{
    unsigned calls = 0;
    for (const auto &f : m.functions)
        for (const auto &blk : f.blocks)
            for (const auto &op : blk.ops)
                calls += op.op == Opcode::Call;
    return calls;
}

} // namespace

TEST(Inliner, InlinesLeafCallsAndPreservesSemantics)
{
    const std::string src = R"(
        var g[8];
        fn tiny(a) { return a * 3 + 1; }
        fn also_tiny(a, b) { g[a & 7] = b; return a ^ b; }
        fn main() {
            var acc = 0;
            for (var i = 0; i < 25; i = i + 1) {
                acc = acc + tiny(i) + also_tiny(i, acc & 15);
            }
            return acc;
        }
    )";
    Module plain = rawCompile(src);
    const ExecResult want = exec(plain);

    Module inlined = rawCompile(src);
    const InlineStats stats = inlineCalls(inlined, InlineOptions{});
    EXPECT_GE(stats.callsInlined, 2u);
    EXPECT_LT(countCalls(inlined), countCalls(plain));
    EXPECT_TRUE(verifyModule(inlined).empty());

    const ExecResult got = exec(inlined);
    EXPECT_EQ(got.exit, want.exit);
    EXPECT_EQ(got.checksum, want.checksum);
    // Calls/returns become jumps (op-count neutral); the win appears
    // once the optimizer cleans the ABI copies and threads the jumps.
    Module plain_opt = plain, inlined_opt = inlined;
    optimizeModule(plain_opt);
    optimizeModule(inlined_opt);
    EXPECT_LT(exec(inlined_opt).ops, exec(plain_opt).ops);
}

TEST(Inliner, FlattensChainsAcrossRounds)
{
    const std::string src = R"(
        fn l0(a) { return a + 1; }
        fn l1(a) { return l0(a) * 2; }
        fn l2(a) { return l1(a) + 3; }
        fn main() { return l2(5); }
    )";
    Module m = rawCompile(src);
    const InlineStats stats = inlineCalls(m, InlineOptions{});
    EXPECT_GE(stats.rounds, 2u);
    EXPECT_EQ(countCalls(m), 0u);  // the whole chain flattens
    EXPECT_EQ(exec(m).exit, ((5u + 1) * 2) + 3);
}

TEST(Inliner, RespectsLibraryAndSizeLimits)
{
    const std::string src = R"(
        library fn lib(a) { return a + 1; }
        fn big(a) {
            var t = a;
            t = t + 1; t = t + 2; t = t + 3; t = t + 4; t = t + 5;
            t = t + 6; t = t + 7; t = t + 8; t = t + 9; t = t + 10;
            t = t + 11; t = t + 12; t = t + 13; t = t + 14;
            return t;
        }
        fn main() { return lib(1) + big(2); }
    )";
    Module m = rawCompile(src);
    InlineOptions options;
    options.maxCalleeOps = 10;  // big() exceeds this; lib() is library
    const InlineStats stats = inlineCalls(m, options);
    EXPECT_EQ(stats.callsInlined, 0u);
    EXPECT_EQ(countCalls(m), 2u);
    EXPECT_EQ(exec(m).exit, 2u + (2 + 105));
}

TEST(Inliner, RecursionIsNeverInlined)
{
    const std::string src = R"(
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(10); }
    )";
    Module m = rawCompile(src);
    inlineCalls(m, InlineOptions{});
    // fib contains calls, so it is not a leaf and never inlined.
    EXPECT_GT(countCalls(m), 0u);
    EXPECT_EQ(exec(m).exit, 55u);
}

TEST(Inliner, InlinedCodeSurvivesFullPipeline)
{
    const std::string src = R"(
        var out[4];
        fn mix(a, b) { return (a ^ b) + (a & b); }
        fn main() {
            var acc = 0;
            for (var i = 0; i < 12; i = i + 1) {
                acc = acc + mix(i, acc);
                out[i & 3] = acc;
            }
            return acc & 0xffff;
        }
    )";
    CompileOptions with_inline;
    with_inline.inlineSmall = true;
    const Module a = compileBlockCOrDie(src);
    const Module b = compileBlockCOrDie(src, with_inline);
    Interp ia(a), ib(b);
    ia.run();
    ib.run();
    EXPECT_EQ(ia.exitValue(), ib.exitValue());
    EXPECT_EQ(ia.dataChecksum(), ib.dataChecksum());
    EXPECT_LT(ib.dynOps(), ia.dynOps());
}

// ---------------------------------------------------------------------
// Property test: optimization preserves semantics on generated
// programs.  Programs are random expression/loop/branch soups over a
// small global array, so every pass gets exercised.
// ---------------------------------------------------------------------

namespace
{

std::string
randomProgram(Rng &rng)
{
    std::ostringstream os;
    os << "var g[16];\n";
    const int nfuncs = 1 + int(rng.nextBelow(3));
    for (int f = 0; f < nfuncs; ++f) {
        os << "fn helper" << f << "(a, b) {\n";
        os << "  var x = a " << (rng.chance(0.5) ? "+" : "*")
           << " b;\n";
        os << "  var y = (a << 2) ^ (b >> 1);\n";
        if (rng.chance(0.5))
            os << "  if (x < y) { x = x + g[a & 15]; }"
                  " else { x = x - y; }\n";
        if (rng.chance(0.5)) {
            os << "  for (var i = 0; i < " << (2 + rng.nextBelow(5))
               << "; i = i + 1) { x = x + i * y; }\n";
        }
        os << "  g[b & 15] = x;\n";
        os << "  return x " << (rng.chance(0.5) ? "&" : "|")
           << " 0xffff;\n";
        os << "}\n";
    }
    os << "fn main() {\n  var acc = 0;\n";
    for (int i = 0; i < 6; ++i) {
        os << "  acc = acc + helper" << rng.nextBelow(nfuncs) << "("
           << rng.nextBelow(100) << ", " << rng.nextBelow(100)
           << ");\n";
    }
    os << "  for (var i = 0; i < 16; i = i + 1) { acc = acc + g[i]; }\n";
    os << "  return acc;\n}\n";
    return os.str();
}

} // namespace

class OptPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OptPropertyTest, OptimizationPreservesSemantics)
{
    Rng rng(1000 + GetParam());
    const std::string src = randomProgram(rng);
    Module raw = rawCompile(src);
    const ExecResult before = exec(raw);
    optimizeModule(raw);
    ASSERT_TRUE(verifyModule(raw).empty()) << src;
    const ExecResult after = exec(raw);
    EXPECT_EQ(before.exit, after.exit) << src;
    EXPECT_EQ(before.checksum, after.checksum) << src;
    EXPECT_LE(after.ops, before.ops) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptPropertyTest,
                         ::testing::Range(0, 25));
