/**
 * @file
 * Parallel-runner tests: parallelFor correctness and — the property
 * the figure drivers rely on — byte-identical driver output for any
 * BSISA_JOBS worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "exp/figures.hh"
#include "support/parallel.hh"

using namespace bsisa;

namespace
{

/** Scoped env override (restores the prior value on destruction). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *old = ::getenv(name);
        if (old) {
            hadOld = true;
            oldValue = old;
        }
        ::setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldValue.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    bool hadOld = false;
    std::string oldValue;
};

} // namespace

TEST(Parallel, JobsFromEnv)
{
    {
        ScopedEnv env("BSISA_JOBS", "3");
        EXPECT_EQ(parallelJobs(), 3u);
    }
    {
        ScopedEnv env("BSISA_JOBS", "0");
        EXPECT_EQ(parallelJobs(), 1u);  // 0 means "one worker"
    }
    ::unsetenv("BSISA_JOBS");
    EXPECT_GE(parallelJobs(), 1u);
}

TEST(Parallel, EveryIndexExactlyOnce)
{
    ScopedEnv env("BSISA_JOBS", "8");
    const std::size_t n = 1000;
    std::vector<std::atomic<unsigned>> hits(n);
    parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST(Parallel, EmptyAndSingle)
{
    parallelFor(0, [&](std::size_t) { FAIL(); });
    unsigned calls = 0;
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1u);
}

TEST(Parallel, ResultsLandInOwnSlots)
{
    ScopedEnv env("BSISA_JOBS", "7");
    const std::size_t n = 513;
    std::vector<std::size_t> out(n, ~std::size_t(0));
    parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, ChunkedEveryIndexExactlyOnce)
{
    // Chunked claiming must still visit every index exactly once, for
    // chunk sizes that divide n, don't divide n, exceed n, and the
    // degenerate chunk of 1 (equivalent to the per-index claim).
    ScopedEnv env("BSISA_JOBS", "8");
    const std::size_t n = 1000;
    for (std::size_t chunk : {std::size_t(1), std::size_t(3),
                              std::size_t(64), std::size_t(999),
                              std::size_t(4096)}) {
        std::vector<std::atomic<unsigned>> hits(n);
        parallelForChunked(n, chunk,
                           [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1u)
                << "chunk=" << chunk << " i=" << i;
    }
}

TEST(Parallel, ChunkedResultsDeterministicAcrossChunkAndJobs)
{
    // The determinism contract: results written to caller-owned slots
    // are identical for any (chunk, jobs) combination, because every
    // index runs exactly once regardless of claim granularity.
    const std::size_t n = 777;
    std::vector<std::uint64_t> reference(n);
    for (std::size_t i = 0; i < n; ++i)
        reference[i] = i * 2654435761u;

    for (const char *jobs : {"1", "3", "8"}) {
        ScopedEnv env("BSISA_JOBS", jobs);
        for (std::size_t chunk : {std::size_t(0), std::size_t(1),
                                  std::size_t(5), std::size_t(900)}) {
            std::vector<std::uint64_t> out(n, 0);
            parallelForChunked(n, chunk, [&](std::size_t i) {
                out[i] = i * 2654435761u;
            });
            EXPECT_EQ(out, reference)
                << "jobs=" << jobs << " chunk=" << chunk;
        }
    }
}

TEST(Parallel, ChunkedClaimsAreContiguousRanges)
{
    // Each CAS claims a run of `chunk` consecutive indices; observe
    // the claim granularity by recording which thread ran each index
    // and checking every aligned chunk was executed by one thread.
    ScopedEnv env("BSISA_JOBS", "4");
    const std::size_t n = 512;
    const std::size_t chunk = 16;
    std::vector<std::thread::id> owner(n);
    parallelForChunked(n, chunk, [&](std::size_t i) {
        owner[i] = std::this_thread::get_id();
    });
    for (std::size_t base = 0; base < n; base += chunk) {
        for (std::size_t i = base; i < base + chunk; ++i)
            EXPECT_EQ(owner[i], owner[base]) << "base=" << base;
    }
}

TEST(Parallel, FigureDriversDeterministicAcrossJobCounts)
{
    // The satellite requirement: figure drivers render byte-identical
    // tables with BSISA_JOBS=1 and BSISA_JOBS=8.  Run the cheapest
    // drivers that exercise every parallel pattern: a per-benchmark
    // fan-out (figure 3) and a trace-reusing grid (figure 6).
    ScopedEnv scale("BSISA_SCALE", "6000");

    std::string serial_fig3, serial_fig6;
    {
        ScopedEnv jobs("BSISA_JOBS", "1");
        std::ostringstream os3, os6;
        runCycleComparison(os3, false);
        runIcacheSweep(os6, false);
        serial_fig3 = os3.str();
        serial_fig6 = os6.str();
    }

    std::string parallel_fig3, parallel_fig6;
    {
        ScopedEnv jobs("BSISA_JOBS", "8");
        std::ostringstream os3, os6;
        runCycleComparison(os3, false);
        runIcacheSweep(os6, false);
        parallel_fig3 = os3.str();
        parallel_fig6 = os6.str();
    }

    EXPECT_EQ(serial_fig3, parallel_fig3);
    EXPECT_EQ(serial_fig6, parallel_fig6);
    EXPECT_FALSE(serial_fig3.empty());
    EXPECT_FALSE(serial_fig6.empty());
}
