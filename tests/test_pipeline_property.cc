/**
 * @file
 * Whole-pipeline property tests and failure-injection tests.
 *
 * The property: for random BlockC programs run through EVERY stage
 * (front end, optional inlining, optimizer, register allocator, block
 * splitting, enlargement), the block-structured program under an
 * adversarial random fetch policy produces the conventional program's
 * architectural state, and both timing models satisfy their structural
 * invariants.
 *
 * The failure-injection tests pin down that the library *rejects*
 * broken inputs instead of silently mis-simulating them.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "ir/verifier.hh"
#include "opt/inliner.hh"
#include "sim/bsa_interp.hh"
#include "sim/interp.hh"
#include "sim/trace.hh"
#include "support/rng.hh"

using namespace bsisa;

namespace
{

/** Random structured BlockC program covering every language feature. */
std::string
fuzzProgram(Rng &rng)
{
    std::ostringstream os;
    os << "var mem[64];\nvar gcount;\n";
    os << "library fn libf(a) { return (a >> 1) ^ (a + 13); }\n";
    const int helpers = 1 + int(rng.nextBelow(4));
    for (int h = 0; h < helpers; ++h) {
        os << "fn h" << h << "(x, y) {\n  var t = x + y;\n";
        const int items = 2 + int(rng.nextBelow(4));
        for (int i = 0; i < items; ++i) {
            switch (rng.nextBelow(6)) {
              case 0:
                os << "  if (t & " << (1 + rng.nextBelow(7))
                   << ") { t = t * 3 + 1; } else { t = t >> 1; }\n";
                break;
              case 1:
                os << "  for (var k = 0; k < "
                   << (1 + rng.nextBelow(5))
                   << "; k = k + 1) { t = t + mem[(t + k) & 63]; }\n";
                break;
              case 2:
                os << "  switch (t & 3) { case 0: { t = t + 7; }"
                      " case 1: { t = t ^ y; } case 2: { t = t - x; }"
                      " case 3: { t = libf(t); } }\n";
                break;
              case 3:
                os << "  mem[t & 63] = t; gcount = gcount + 1;\n";
                break;
              case 4:
                if (h > 0) {
                    os << "  t = t + h" << rng.nextBelow(h) << "(t & 255, "
                       << rng.nextBelow(9) << ");\n";
                } else {
                    os << "  t = t + libf(t & 1023);\n";
                }
                break;
              case 5:
                os << "  while (t > " << (100 + rng.nextBelow(900))
                   << ") { t = t - " << (37 + rng.nextBelow(200))
                   << "; }\n";
                break;
            }
        }
        os << "  return t & 0xfffff;\n}\n";
    }
    os << "fn main() {\n  var acc = 1;\n";
    os << "  for (var i = 0; i < " << (20 + rng.nextBelow(30))
       << "; i = i + 1) {\n";
    os << "    acc = (acc + h" << (helpers - 1)
       << "(i, acc & 31)) & 0xffffff;\n  }\n";
    os << "  return acc;\n}\n";
    return os.str();
}

} // namespace

class FullPipelinePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FullPipelinePropertyTest, EveryStagePreservesTheProgram)
{
    Rng rng(90000 + GetParam());
    const std::string src = fuzzProgram(rng);

    // Reference: unoptimized, unallocated execution.
    CompileOptions raw_options;
    raw_options.optimize = false;
    raw_options.allocate = false;
    raw_options.maxBlockOps = 0;
    Module raw = compileBlockCOrDie(src, raw_options);
    for (std::size_t i = 0; i < raw.data.size(); ++i)
        raw.data[i] = rng.nextBelow(64);
    Interp ref(raw);
    ref.run();
    ASSERT_TRUE(ref.halted()) << src;

    // Full pipeline, with and without inlining.
    for (const bool with_inline : {false, true}) {
        CompileOptions options;
        options.inlineSmall = with_inline;
        Module m = compileBlockCOrDie(src, options);
        for (std::size_t i = 0; i < m.data.size(); ++i)
            m.data[i] = raw.data[i];
        ASSERT_TRUE(verifyModule(m).empty()) << src;

        Interp conv(m);
        conv.run();
        EXPECT_EQ(conv.exitValue(), ref.exitValue()) << src;
        EXPECT_EQ(conv.dataChecksum(), ref.dataChecksum()) << src;

        const BsaModule bsa = enlargeModule(m, EnlargeConfig{});
        BsaInterp adversary(bsa,
                            randomVariantPolicy(GetParam() * 7 + 1));
        adversary.run();
        EXPECT_TRUE(adversary.halted()) << src;
        EXPECT_EQ(adversary.exitValue(), ref.exitValue()) << src;
        EXPECT_EQ(adversary.dataChecksum(), ref.dataChecksum()) << src;

        // Timing invariants on both machines.
        RunConfig config;
        const PairResult r = runPair(m, config);
        EXPECT_EQ(r.conv.retiredOps, conv.dynOps()) << src;
        EXPECT_GE(r.conv.cycles * 16, r.conv.retiredOps) << src;
        EXPECT_GE(r.bsa.cycles * 16, r.bsa.retiredOps) << src;
        EXPECT_GE(r.bsa.avgBlockSize(), r.conv.avgBlockSize() * 0.99)
            << src;

        // The out-of-order backend consumes the same streams: exact
        // committed-op agreement with the abstract model, ROB bounded
        // by its configuration, and a deterministic rerun.
        RunConfig oooConfig;
        oooConfig.machine.timingModel = TimingModel::Ooo;
        const PairResult o = runPair(m, oooConfig);
        EXPECT_EQ(o.conv.retiredOps, r.conv.retiredOps) << src;
        EXPECT_EQ(o.conv.retiredUnits, r.conv.retiredUnits) << src;
        EXPECT_EQ(o.bsa.retiredOps, r.bsa.retiredOps) << src;
        EXPECT_EQ(o.bsa.retiredUnits, r.bsa.retiredUnits) << src;
        EXPECT_LE(o.conv.peakWindowOps, oooConfig.machine.ooo.robOps)
            << src;
        EXPECT_LE(o.bsa.peakWindowOps, oooConfig.machine.ooo.robOps)
            << src;
        const PairResult o2 = runPair(m, oooConfig);
        EXPECT_EQ(o.conv.cycles, o2.conv.cycles) << src;
        EXPECT_EQ(o.bsa.cycles, o2.bsa.cycles) << src;
    }
}

// Identical (trace, config) pairs must produce bit-identical results
// down every execution path that can compute them: the sequential
// per-config replay and a lockstep batch containing the config (for
// OoO lanes, the batch partition's singleton path).  The same test
// compiled under -DBSISA_DISABLE_SIMD=ON covers the scalar-kernel
// build, so a cross-build result drift fails CI in either build.
TEST(FullPipelineProperty, TimingResultsAreBitIdenticalAcrossPaths)
{
    Rng rng(97);
    const std::string src = fuzzProgram(rng);
    Module m = compileBlockCOrDie(src);
    for (std::size_t i = 0; i < m.data.size(); ++i)
        m.data[i] = rng.nextBelow(64);
    Interp::Limits limits;
    const ExecTrace trace = captureTrace(m, limits);

    for (const TimingModel model :
         {TimingModel::Abstract, TimingModel::Ooo}) {
        MachineConfig machine;
        machine.timingModel = model;
        MachineConfig narrow = machine;
        narrow.issueWidth = 8;

        const SimResult solo = runConventional(m, machine, trace);
        const SimResult rerun = runConventional(m, machine, trace);
        const std::vector<SimResult> batch = runConventionalBatch(
            m, std::vector<MachineConfig>{machine, narrow}, trace);

        for (const SimResult *other : {&rerun, &batch[0]}) {
            EXPECT_EQ(solo.cycles, other->cycles);
            EXPECT_EQ(solo.retiredOps, other->retiredOps);
            EXPECT_EQ(solo.retiredUnits, other->retiredUnits);
            EXPECT_EQ(solo.wrongPathOps, other->wrongPathOps);
            EXPECT_EQ(solo.stallRedirect, other->stallRedirect);
            EXPECT_EQ(solo.stallWindow, other->stallWindow);
            EXPECT_EQ(solo.stallIcache, other->stallIcache);
            EXPECT_EQ(solo.peakWindowUnits, other->peakWindowUnits);
            EXPECT_EQ(solo.peakWindowOps, other->peakWindowOps);
            EXPECT_EQ(solo.icache.misses, other->icache.misses);
            EXPECT_EQ(solo.dcache.misses, other->dcache.misses);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullPipelinePropertyTest,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// Failure injection: broken inputs must be rejected loudly.
// ---------------------------------------------------------------------

using PipelineDeathTest = ::testing::Test;

TEST(PipelineDeathTest, InterpPanicsOnFaultInConventionalCode)
{
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    f.newBlock();
    f.blocks[0].ops = {makeFault(4, 0), makeHalt()};
    Interp interp(m);
    EXPECT_DEATH(interp.run(), "fault operation reached");
}

TEST(PipelineDeathTest, EnlargePanicsOnOversizedBlocks)
{
    // Enlargement requires blocks already split to <= maxOps.
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    f.newBlock();
    for (int i = 0; i < 20; ++i)
        f.blocks[0].ops.push_back(makeMovI(4, i));
    f.blocks[0].ops.push_back(makeHalt());
    EXPECT_DEATH(enlargeModule(m, EnlargeConfig{}),
                 "exceeds the issue width");
}

TEST(PipelineDeathTest, UnalignedAccessIsFatal)
{
    Module m;
    Function &f = m.addFunction("main");
    m.mainFunc = f.id;
    f.newBlock();
    f.blocks[0].ops = {makeMovI(4, 3), makeLd(5, 4, 0), makeHalt()};
    Interp interp(m);
    EXPECT_DEATH(interp.run(), "unaligned");
}

TEST(PipelineDeathTest, RunawayRecursionIsFatal)
{
    const std::string src = R"(
        fn forever(n) { return forever(n + 1); }
        fn main() { return forever(0); }
    )";
    const Module m = compileBlockCOrDie(src);
    Interp interp(m);
    EXPECT_DEATH(interp.run(), "call stack overflow");
}

TEST(PipelineDeathTest, CompileOrDieExitsOnBadSource)
{
    EXPECT_EXIT(compileBlockCOrDie("fn main() { oops; }"),
                ::testing::ExitedWithCode(1), "compilation failed");
}
