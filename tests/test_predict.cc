/**
 * @file
 * Unit tests for the two-level adaptive predictor and the block
 * successor predictor (BTB fill, 3-bit predictions, variable history
 * shift).
 */

#include <gtest/gtest.h>

#include "predict/blockpred.hh"
#include "predict/twolevel.hh"

using namespace bsisa;

namespace
{

PredictorConfig
smallConfig()
{
    PredictorConfig cfg;
    cfg.historyBits = 8;
    cfg.phtBits = 10;
    cfg.btbEntries = 64;
    cfg.btbAssoc = 4;
    return cfg;
}

} // namespace

TEST(TwoLevel, LearnsBias)
{
    TwoLevelPredictor p(smallConfig());
    const std::uint64_t pc = 0x4000;
    for (int i = 0; i < 50; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predictTaken(pc));
    for (int i = 0; i < 50; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predictTaken(pc));
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    // With global history, a strict T/N alternation becomes perfectly
    // predictable after warmup.
    TwoLevelPredictor p(smallConfig());
    const std::uint64_t pc = 0x4000;
    bool dir = false;
    for (int i = 0; i < 200; ++i) {
        p.update(pc, dir);
        dir = !dir;
    }
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += p.predictTaken(pc) == dir;
        p.update(pc, dir);
        dir = !dir;
    }
    EXPECT_GT(correct, 95u);
}

TEST(TwoLevel, LearnsPeriodicPattern)
{
    // Pattern T T N repeating: needs >= 3 history bits.
    TwoLevelPredictor p(smallConfig());
    const std::uint64_t pc = 0x8000;
    const bool pattern[3] = {true, true, false};
    for (int i = 0; i < 300; ++i)
        p.update(pc, pattern[i % 3]);
    unsigned correct = 0;
    for (int i = 0; i < 99; ++i) {
        const bool actual = pattern[i % 3];
        correct += p.predictTaken(pc) == actual;
        p.update(pc, actual);
    }
    EXPECT_GT(correct, 92u);
}

TEST(TwoLevel, BtbStoresTargets)
{
    TwoLevelPredictor p(smallConfig());
    EXPECT_EQ(p.predictTarget(0x100), ~0ull);
    p.updateTarget(0x100, 0xaaaa);
    EXPECT_EQ(p.predictTarget(0x100), 0xaaaau);
    p.updateTarget(0x100, 0xbbbb);
    EXPECT_EQ(p.predictTarget(0x100), 0xbbbbu);
}

TEST(TwoLevel, BtbEvictsLru)
{
    PredictorConfig cfg = smallConfig();
    cfg.btbEntries = 8;
    cfg.btbAssoc = 2;  // 4 sets
    TwoLevelPredictor p(cfg);
    // Three PCs in the same set (pc>>2 % 4 equal).
    const std::uint64_t a = 0x00, b = 0x10, c = 0x20;
    p.updateTarget(a, 1);
    p.updateTarget(b, 2);
    p.predictTarget(a);
    p.updateTarget(c, 3);  // evicts the LRU entry
    const int present = (p.predictTarget(a) != ~0ull) +
                        (p.predictTarget(b) != ~0ull) +
                        (p.predictTarget(c) != ~0ull);
    EXPECT_EQ(present, 2);
    EXPECT_NE(p.predictTarget(c), ~0ull);
}

TEST(TwoLevel, ReturnAddressStack)
{
    TwoLevelPredictor p(smallConfig());
    p.pushReturn(11);
    p.pushReturn(22);
    EXPECT_EQ(p.popReturn(), 22u);
    EXPECT_EQ(p.popReturn(), 11u);
    EXPECT_EQ(p.popReturn(), ~0ull);
}

TEST(BlockPred, LearnsThreeBitSelection)
{
    BlockPredictor p(smallConfig());
    const std::uint64_t pc = 0x4000;
    BlockPredictor::Prediction actual;
    actual.trapTaken = true;
    actual.variantBits = 2;
    for (int i = 0; i < 50; ++i)
        p.update(pc, actual, 3, 6);
    const auto pred = p.predict(pc);
    EXPECT_TRUE(pred.trapTaken);
    EXPECT_EQ(pred.variantBits, 2u);
}

TEST(BlockPred, BtbSlotsFillIncrementally)
{
    BlockPredictor p(smallConfig());
    const std::uint64_t pc = 0x4000;
    EXPECT_FALSE(p.hasEntry(pc));
    EXPECT_EQ(p.successor(pc, 0), ~0ull);
    p.install(pc, 0, 100);
    EXPECT_TRUE(p.hasEntry(pc));
    EXPECT_EQ(p.successor(pc, 0), 100u);
    EXPECT_EQ(p.successor(pc, 3), ~0ull);  // not yet encountered
    p.install(pc, 3, 103);
    EXPECT_EQ(p.successor(pc, 3), 103u);
    EXPECT_EQ(p.lastSuccessor(pc), 103u);
}

TEST(BlockPred, VariableHistoryShiftChangesIndexing)
{
    // Two predictors fed the same outcomes but with different shift
    // amounts must diverge in PHT state; we detect that via a pattern
    // only learnable when the shift keeps history compact.
    PredictorConfig cfg = smallConfig();
    cfg.historyBits = 4;
    BlockPredictor narrow(cfg);
    const std::uint64_t pc = 0x1000;

    // Period-2 variant pattern: variants 0, 1, 0, 1 ...
    // With a 1-bit shift the 4-bit history distinguishes phases.
    for (int i = 0; i < 400; ++i) {
        BlockPredictor::Prediction actual;
        actual.trapTaken = false;
        actual.variantBits = i & 1;
        narrow.update(pc, actual, 1, i & 1);
    }
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        const unsigned expect_bits = i & 1;
        correct += narrow.predict(pc).variantBits == expect_bits;
        BlockPredictor::Prediction actual;
        actual.trapTaken = false;
        actual.variantBits = expect_bits;
        narrow.update(pc, actual, 1, expect_bits);
    }
    EXPECT_GT(correct, 90u);
}

TEST(BlockPred, ZeroShiftPreservesHistory)
{
    // succBits == 0 must leave the history register untouched: train a
    // history-dependent pattern at pc A, interleave zero-shift updates
    // at pc B, and verify A's pattern stays learnable.
    PredictorConfig cfg = smallConfig();
    BlockPredictor p(cfg);
    // Low PHT-index bits must differ or the two PCs alias.
    const std::uint64_t a = 0x104, b = 0x208;
    for (int i = 0; i < 400; ++i) {
        BlockPredictor::Prediction actual;
        actual.trapTaken = (i & 1) != 0;
        actual.variantBits = 0;
        p.update(a, actual, 1, i & 1);
        // Zero-bit shifts (single-successor blocks) in between.
        BlockPredictor::Prediction noop;
        noop.trapTaken = false;
        noop.variantBits = 0;
        p.update(b, noop, 0, 0);
    }
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool expect_taken = (i & 1) != 0;
        correct += p.predict(a).trapTaken == expect_taken;
        BlockPredictor::Prediction actual;
        actual.trapTaken = expect_taken;
        actual.variantBits = 0;
        p.update(a, actual, 1, i & 1);
        BlockPredictor::Prediction noop;
        p.update(b, noop, 0, 0);
    }
    EXPECT_GT(correct, 90u);
}

TEST(Schemes, NamesAndConstruction)
{
    EXPECT_STREQ(predictorSchemeName(PredictorScheme::GAg), "GAg");
    EXPECT_STREQ(predictorSchemeName(PredictorScheme::PAs), "PAs");
    for (PredictorScheme scheme :
         {PredictorScheme::GAg, PredictorScheme::GAs,
          PredictorScheme::PAg, PredictorScheme::PAs}) {
        PredictorConfig cfg = smallConfig();
        cfg.scheme = scheme;
        TwoLevelPredictor p(cfg);
        p.update(0x40, true);
        (void)p.predictTaken(0x40);
        BlockPredictor b(cfg);
        b.update(0x40, BlockPredictor::Prediction{}, 1, 0);
        (void)b.predict(0x40);
    }
}

TEST(Schemes, PerAddressHistoryIsolatesBranches)
{
    // Branch A alternates; branch B is always taken.  With GLOBAL
    // history B's updates pollute A's phase information when they
    // interleave 1:1 at the same rate... but with PER-ADDRESS history
    // A's pattern is tracked in its own register, so A must reach
    // near-perfect accuracy.
    PredictorConfig cfg = smallConfig();
    cfg.scheme = PredictorScheme::PAs;
    TwoLevelPredictor p(cfg);
    const std::uint64_t a = 0x104, b = 0x208;
    for (int i = 0; i < 400; ++i) {
        p.update(a, (i & 1) != 0);
        p.update(b, true);
        p.update(b, true);
        p.update(b, (i % 7) == 0);  // noise in B's history only
    }
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool actual = (i & 1) != 0;
        correct += p.predictTaken(a) == actual;
        p.update(a, actual);
        p.update(b, true);
        p.update(b, true);
        p.update(b, (i % 7) == 0);
    }
    EXPECT_GT(correct, 90u);
}

TEST(Schemes, GAgSharesOnePhtRow)
{
    // GAg ignores the branch address entirely: two branches with the
    // same history land in the same PHT entry.
    PredictorConfig cfg = smallConfig();
    cfg.scheme = PredictorScheme::GAg;
    TwoLevelPredictor p(cfg);
    // Saturate taken with zero history at pc A.
    for (int i = 0; i < 8; ++i) {
        p.update(0x104, true);
        // Reset history to zero by shifting in zeros via not-taken.
        for (int k = 0; k < 12; ++k)
            p.update(0x104, false);
    }
    for (int k = 0; k < 12; ++k)
        p.update(0x104, false);
    // A completely different pc with the same (zero) history sees the
    // same counter state.
    EXPECT_EQ(p.predictTaken(0x104), p.predictTaken(0x999104));
}

TEST(BlockPred, ReturnStack)
{
    BlockPredictor p(smallConfig());
    p.pushReturn(7);
    EXPECT_EQ(p.popReturn(), 7u);
    EXPECT_EQ(p.popReturn(), ~0ull);
}
