/**
 * @file
 * Unit and property tests for liveness analysis and the linear-scan
 * register allocator.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "frontend/compile.hh"
#include "ir/verifier.hh"
#include "opt/passes.hh"
#include "regalloc/linearscan.hh"
#include "regalloc/liveness.hh"
#include "sim/interp.hh"
#include "support/rng.hh"

using namespace bsisa;

namespace
{

Module
unallocatedCompile(const std::string &source)
{
    CompileOptions options;
    options.optimize = false;  // keep register pressure intact
    options.allocate = false;
    options.maxBlockOps = 0;
    return compileBlockCOrDie(source, options);
}

} // namespace

TEST(RegSet, BasicOperations)
{
    RegSet s(128);
    EXPECT_FALSE(s.contains(5));
    s.insert(5);
    s.insert(127);
    EXPECT_TRUE(s.contains(5));
    EXPECT_TRUE(s.contains(127));
    EXPECT_EQ(s.count(), 2u);
    s.erase(5);
    EXPECT_FALSE(s.contains(5));

    RegSet t(128);
    t.insert(64);
    EXPECT_TRUE(s.unionWith(t));
    EXPECT_FALSE(s.unionWith(t));  // second union is a no-op
    EXPECT_TRUE(s.contains(64));
}

TEST(Liveness, StraightLine)
{
    // B0: v = 1; w = v + v; trap w -> B1/B1 ... simplest check via a
    // compiled program: a value defined in the entry and used at the
    // end must be live across the middle block.
    Module m = unallocatedCompile(R"(
        fn main() {
            var keep = 123;
            var i = 0;
            while (i < 3) { i = i + 1; }
            return keep + i;
        }
    )");
    const Function &f = m.functions[m.mainFunc];
    const Liveness live = computeLiveness(f);
    // 'keep' must be live-in to every loop block; find its register by
    // looking at the MovI 123.
    // Unoptimized IR materializes 123 into a temp then copies it into
    // the variable's register; follow the copy.
    RegNum temp_reg = invalidId, keep_reg = invalidId;
    for (const auto &blk : f.blocks)
        for (const auto &op : blk.ops) {
            if (op.op == Opcode::MovI && op.imm == 123)
                temp_reg = op.dst;
            else if (op.op == Opcode::Mov && op.src1 == temp_reg &&
                     temp_reg != invalidId && keep_reg == invalidId)
                keep_reg = op.dst;
        }
    ASSERT_NE(keep_reg, invalidId);
    unsigned live_blocks = 0;
    for (BlockId b = 0; b < f.blocks.size(); ++b)
        live_blocks += live.liveIn[b].contains(keep_reg);
    EXPECT_GE(live_blocks, 2u);
}

TEST(Liveness, DeadAfterLastUse)
{
    Module m = unallocatedCompile(R"(
        fn main() {
            var early = 5;
            var late = early + 1;
            var i = 0;
            while (i < 3) { i = i + late; }
            return i;
        }
    )");
    const Function &f = m.functions[m.mainFunc];
    const Liveness live = computeLiveness(f);
    RegNum early_reg = invalidId;
    for (const auto &blk : f.blocks)
        for (const auto &op : blk.ops)
            if (op.op == Opcode::MovI && op.imm == 5)
                early_reg = op.dst;
    ASSERT_NE(early_reg, invalidId);
    // 'early' must not be live out of the loop blocks.
    const auto rpo_last = f.blocks.size() - 1;
    EXPECT_FALSE(live.liveOut[rpo_last].contains(early_reg));
}

TEST(LinearScan, NoVirtualRegistersRemain)
{
    Module m = unallocatedCompile(R"(
        fn busy(a, b) {
            var c = a + b; var d = a - b; var e = a * b;
            var f = a & b; var g = a | b; var h = a ^ b;
            return c + d + e + f + g + h;
        }
        fn main() { return busy(9, 4); }
    )");
    allocateModule(m);
    for (const auto &f : m.functions) {
        EXPECT_EQ(f.numVirtualRegs, numArchRegs);
        for (const auto &blk : f.blocks) {
            for (const auto &op : blk.ops) {
                if (hasDest(op.op)) {
                    EXPECT_LT(op.dst, numArchRegs);
                }
                if (numSources(op.op) >= 1) {
                    EXPECT_LT(op.src1, numArchRegs);
                }
                if (numSources(op.op) >= 2) {
                    EXPECT_LT(op.src2, numArchRegs);
                }
            }
        }
    }
    EXPECT_TRUE(verifyModule(m).empty());
    Interp interp(m);
    interp.run();
    EXPECT_EQ(interp.exitValue(),
              (9u + 4) + (9 - 4) + 36 + (9 & 4) + (9 | 4) + (9 ^ 4));
}

TEST(LinearScan, SpillsUnderPressureAndStaysCorrect)
{
    // 30 simultaneously-live values >> 20 allocatable registers.
    std::ostringstream os;
    os << "fn main() {\n";
    for (int i = 0; i < 30; ++i)
        os << "  var v" << i << " = " << (i * 7 + 1) << ";\n";
    os << "  var sum = 0;\n";
    // Use them in reverse so every interval spans the whole region.
    for (int i = 29; i >= 0; --i)
        os << "  sum = sum + v" << i << ";\n";
    os << "  return sum;\n}\n";

    Module m = unallocatedCompile(os.str());
    // Disable optimization effects by compiling raw; allocate now.
    const RegAllocStats stats = allocateModule(m);
    EXPECT_GT(stats.spilled, 0u);
    EXPECT_GT(stats.spillOpsAdded, 0u);
    EXPECT_GT(m.functions[m.mainFunc].frameSize, 0u);
    EXPECT_TRUE(verifyModule(m).empty());

    std::uint64_t expected = 0;
    for (int i = 0; i < 30; ++i)
        expected += i * 7 + 1;
    Interp interp(m);
    interp.run();
    EXPECT_EQ(interp.exitValue(), expected);
}

TEST(LinearScan, FrameSizeCoversSlots)
{
    Module m = unallocatedCompile(R"(
        fn main() { return 1; }
    )");
    allocateModule(m);
    EXPECT_EQ(m.functions[m.mainFunc].frameSize % 8, 0u);
}

// ---------------------------------------------------------------------
// Property test: allocation preserves semantics under pressure.
// ---------------------------------------------------------------------

namespace
{

std::string
pressureProgram(Rng &rng)
{
    std::ostringstream os;
    const int vars = 8 + int(rng.nextBelow(30));
    os << "var g[8];\n";
    os << "fn mix(seed) {\n";
    for (int i = 0; i < vars; ++i) {
        os << "  var v" << i << " = seed * " << (i + 1) << " + "
           << rng.nextBelow(50) << ";\n";
    }
    os << "  var acc = 0;\n";
    for (int i = vars - 1; i >= 0; --i) {
        os << "  acc = acc " << (rng.chance(0.7) ? "+" : "^") << " v"
           << i << ";\n";
    }
    if (rng.chance(0.6))
        os << "  if (acc & 1) { acc = acc + v0; } else"
              " { acc = acc + v1; }\n";
    os << "  g[seed & 7] = acc;\n  return acc;\n}\n";
    os << "fn main() {\n  var t = 0;\n";
    os << "  for (var i = 0; i < 5; i = i + 1)"
          " { t = t + mix(i + 1); }\n";
    os << "  return t;\n}\n";
    return os.str();
}

} // namespace

class RegAllocPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RegAllocPropertyTest, AllocationPreservesSemantics)
{
    Rng rng(7000 + GetParam());
    const std::string src = pressureProgram(rng);
    Module pre = unallocatedCompile(src);
    Interp ip(pre);
    ip.run();
    const std::uint64_t want_exit = ip.exitValue();
    const std::uint64_t want_sum = ip.dataChecksum();

    Module post = unallocatedCompile(src);
    allocateModule(post);
    ASSERT_TRUE(verifyModule(post).empty()) << src;
    Interp ia(post);
    ia.run();
    EXPECT_EQ(ia.exitValue(), want_exit) << src;
    EXPECT_EQ(ia.dataChecksum(), want_sum) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegAllocPropertyTest,
                         ::testing::Range(0, 25));
