/**
 * @file
 * Differential semantics tests: every BlockC operator, executed
 * through the full compiler + interpreter stack, must agree with a
 * native C++ reference evaluation over sweeps of interesting operand
 * values — including the ISA's defined-division and shift-masking
 * rules.  Plus a parameterized property sweep of enlargement across
 * issue widths.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/enlarge.hh"
#include "frontend/compile.hh"
#include "sim/bsa_interp.hh"
#include "sim/interp.hh"

using namespace bsisa;

namespace
{

std::uint64_t
runExpr(const std::string &expr_with_ab, std::int64_t a, std::int64_t b)
{
    std::ostringstream os;
    os << "fn f(a, b) { return " << expr_with_ab << "; }\n";
    // Pass operands through globals so constant folding cannot cheat.
    os << "var ga = " << a << ";\nvar gb = " << b << ";\n";
    os << "fn main() { return f(ga, gb); }\n";
    const Module m = compileBlockCOrDie(os.str());
    Interp interp(m);
    interp.run();
    EXPECT_TRUE(interp.halted());
    return interp.exitValue();
}

/** The ISA's defined signed division. */
std::int64_t
refDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == INT64_MIN && b == -1)
        return INT64_MIN;
    return a / b;
}

std::int64_t
refRem(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return a;
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

const std::int64_t kInteresting[] = {
    0, 1, -1, 2, -2, 7, -7, 63, 64, -64, 255, 1000003, -999999,
    INT64_MAX, INT64_MIN, INT64_MIN + 1,
};

} // namespace

class OperatorDifferentialTest
    : public ::testing::TestWithParam<std::pair<std::int64_t,
                                                std::int64_t>>
{
};

TEST_P(OperatorDifferentialTest, MatchesReferenceSemantics)
{
    const auto [a, b] = GetParam();
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);

    EXPECT_EQ(runExpr("a + b", a, b), ua + ub);
    EXPECT_EQ(runExpr("a - b", a, b), ua - ub);
    EXPECT_EQ(runExpr("a * b", a, b), ua * ub);
    EXPECT_EQ(runExpr("a / b", a, b),
              static_cast<std::uint64_t>(refDiv(a, b)));
    EXPECT_EQ(runExpr("a % b", a, b),
              static_cast<std::uint64_t>(refRem(a, b)));
    EXPECT_EQ(runExpr("a & b", a, b), ua & ub);
    EXPECT_EQ(runExpr("a | b", a, b), ua | ub);
    EXPECT_EQ(runExpr("a ^ b", a, b), ua ^ ub);
    EXPECT_EQ(runExpr("a << b", a, b), ua << (ub & 63));
    EXPECT_EQ(runExpr("a >> b", a, b), ua >> (ub & 63));
    EXPECT_EQ(runExpr("a < b", a, b), std::uint64_t(a < b));
    EXPECT_EQ(runExpr("a <= b", a, b), std::uint64_t(a <= b));
    EXPECT_EQ(runExpr("a > b", a, b), std::uint64_t(a > b));
    EXPECT_EQ(runExpr("a >= b", a, b), std::uint64_t(a >= b));
    EXPECT_EQ(runExpr("a == b", a, b), std::uint64_t(a == b));
    EXPECT_EQ(runExpr("a != b", a, b), std::uint64_t(a != b));
    EXPECT_EQ(runExpr("-a", a, b), 0 - ua);
    EXPECT_EQ(runExpr("!a", a, b), std::uint64_t(a == 0));
    EXPECT_EQ(runExpr("~a", a, b), ~ua);
    EXPECT_EQ(runExpr("a && b", a, b),
              std::uint64_t(a != 0 && b != 0));
    EXPECT_EQ(runExpr("a || b", a, b),
              std::uint64_t(a != 0 || b != 0));
}

namespace
{

std::vector<std::pair<std::int64_t, std::int64_t>>
operandPairs()
{
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    // A diagonal-ish selection keeps the sweep fast but covers every
    // interesting value on both sides.
    const std::size_t n = std::size(kInteresting);
    for (std::size_t i = 0; i < n; ++i)
        pairs.emplace_back(kInteresting[i],
                           kInteresting[(i * 7 + 3) % n]);
    pairs.emplace_back(INT64_MIN, -1);  // the division corner
    pairs.emplace_back(5, 0);           // division by zero
    return pairs;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Operands, OperatorDifferentialTest,
                         ::testing::ValuesIn(operandPairs()));

// ---------------------------------------------------------------------
// Enlargement property sweep across issue widths: at every width the
// atomic blocks respect the limit and the adversarial equivalence
// holds.
// ---------------------------------------------------------------------

class IssueWidthSweepTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IssueWidthSweepTest, EnlargementRespectsWidthAndSemantics)
{
    const unsigned width = GetParam();
    const char *src = R"(
        var d[16];
        fn kern(x, i) {
            var t = x;
            if (d[i & 15] & 1) { t = t * 5 + 1; } else { t = t + i; }
            if (t & 2) { t = t ^ 0x55; }
            return t & 0xffff;
        }
        fn main() {
            var acc = 0;
            for (var i = 0; i < 60; i = i + 1) {
                acc = (acc + kern(acc, i)) & 0xfffff;
                d[i & 15] = acc;
            }
            return acc;
        }
    )";
    CompileOptions options;
    options.maxBlockOps = width;
    const Module m = compileBlockCOrDie(src, options);

    Interp conv(m);
    conv.run();

    EnlargeConfig config;
    config.maxOps = width;
    const BsaModule bsa = enlargeModule(m, config);
    for (const auto &blk : bsa.blocks)
        EXPECT_LE(blk.ops.size(), width);

    BsaInterp adversary(bsa, randomVariantPolicy(width));
    adversary.run();
    EXPECT_TRUE(adversary.halted());
    EXPECT_EQ(adversary.exitValue(), conv.exitValue());
    EXPECT_EQ(adversary.dataChecksum(), conv.dataChecksum());
}

INSTANTIATE_TEST_SUITE_P(Widths, IssueWidthSweepTest,
                         ::testing::Values(4u, 6u, 8u, 12u, 16u, 24u,
                                           32u));

// ---------------------------------------------------------------------
// Atomic all-or-nothing under op budgets: an Interp::Limits-style op
// budget that expires strictly inside an enlarged block must not
// commit (or suppress) a partial block.  Stopping on an op budget b
// must leave exactly the state of stopping at the same block boundary
// by block count — for every b, under both fetch policies.
// ---------------------------------------------------------------------

TEST(AtomicBudgetTest, OpBudgetExpiryNeverCommitsPartialBlocks)
{
    const char *src = R"(
        var d[16];
        fn mix(x, i) {
            var t = x ^ i;
            if (d[i & 15] & 1) { t = t * 3 + 1; } else { t = t - i; }
            return t;
        }
        fn main() {
            var acc = 0;
            for (var i = 0; i < 24; i = i + 1) {
                d[i & 15] = (i * 2654435761) & 255;
                acc = (acc + mix(acc, i)) & 0xffffff;
            }
            return acc;
        }
    )";
    const Module m = compileBlockCOrDie(src);
    const BsaModule bsa = enlargeModule(m, EnlargeConfig{});

    for (const bool random : {false, true}) {
        auto policy = [&] {
            return random ? randomVariantPolicy(99)
                          : firstVariantPolicy();
        };
        BsaInterp full(bsa, policy());
        full.run();
        ASSERT_TRUE(full.halted());
        const std::uint64_t total =
            full.committedOps() + full.suppressedOps();
        ASSERT_GT(total, 64u);

        unsigned midBlockStops = 0;
        for (std::uint64_t b = 1; b <= total; b += 7) {
            BsaInterp::Limits la;
            la.maxOps = b;
            BsaInterp a(bsa, policy(), la);
            a.run();
            const std::uint64_t aOps =
                a.committedOps() + a.suppressedOps();
            if (!a.halted()) {
                // The limit stops cleanly at a block boundary, so the
                // executed total reaches the budget; overshoot means
                // the budget expired inside the final block, which
                // still executed whole.
                EXPECT_GE(aOps, b) << "budget " << b;
                if (aOps > b)
                    ++midBlockStops;
            }

            BsaInterp::Limits lb;
            lb.maxBlocks =
                a.committedBlocks() + a.suppressedBlocks();
            BsaInterp c(bsa, policy(), lb);
            c.run();
            EXPECT_EQ(a.committedOps(), c.committedOps())
                << "budget " << b;
            EXPECT_EQ(a.suppressedOps(), c.suppressedOps())
                << "budget " << b;
            EXPECT_EQ(a.committedBlocks(), c.committedBlocks())
                << "budget " << b;
            EXPECT_EQ(a.suppressedBlocks(), c.suppressedBlocks())
                << "budget " << b;
            EXPECT_EQ(a.halted(), c.halted()) << "budget " << b;
            EXPECT_EQ(a.exitValue(), c.exitValue()) << "budget " << b;
            EXPECT_EQ(a.memChecksum(), c.memChecksum())
                << "budget " << b;
        }
        // The sweep must actually have hit the mid-block path.
        EXPECT_GT(midBlockStops, 0u) << (random ? "random" : "first");
    }
}
