/**
 * @file
 * Unit tests for the support layer: RNG determinism and distributions,
 * saturating counters, bit utilities, tables, and the stats registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/bitutil.hh"
#include "support/env.hh"
#include "support/rng.hh"
#include "support/sat_counter.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace bsisa;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(7);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++hits[rng.nextBelow(8)];
    for (int h : hits)
        EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, SizeDrawMeanAndCap)
{
    Rng rng(17);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const unsigned v = rng.sizeDraw(5.0, 16);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 16u);
        sum += v;
    }
    // Mean is pulled below 5 by the cap; accept a loose band.
    EXPECT_GT(sum / n, 3.5);
    EXPECT_LT(sum / n, 5.5);
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng b = a.fork();
    // Streams should not be identical.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(SatCounter, TwoBitStateMachine)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predictTaken());
    c.train(true);   // 1
    EXPECT_FALSE(c.predictTaken());
    c.train(true);   // 2
    EXPECT_TRUE(c.predictTaken());
    c.train(true);   // 3
    c.train(true);   // saturates at 3
    EXPECT_EQ(c.value(), 3u);
    c.train(false);  // 2
    EXPECT_TRUE(c.predictTaken());
    c.train(false);  // 1
    EXPECT_FALSE(c.predictTaken());
    c.train(false);
    c.train(false);  // saturates at 0
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, OneBit)
{
    SatCounter c(1, 0);
    EXPECT_FALSE(c.predictTaken());
    c.train(true);
    EXPECT_TRUE(c.predictTaken());
    c.train(false);
    EXPECT_FALSE(c.predictTaken());
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(8), 3u);
    EXPECT_EQ(ceilLog2(9), 4u);
}

TEST(BitUtil, PowerOfTwoAndMask)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(3), 7u);
    EXPECT_EQ(lowMask(64), ~0ULL);
}

TEST(Table, AlignsAndFormats)
{
    Table t({"name", "value"});
    t.addRow({"alpha", Table::fmt(std::uint64_t(42))});
    t.addRow({"b", Table::fmt(3.14159, 2)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, ThousandsSeparator)
{
    EXPECT_EQ(Table::fmtSep(0), "0");
    EXPECT_EQ(Table::fmtSep(999), "999");
    EXPECT_EQ(Table::fmtSep(1000), "1,000");
    EXPECT_EQ(Table::fmtSep(103015025), "103,015,025");
}

TEST(BarChart, RendersAllSeries)
{
    BarChart chart("demo", {"conv", "bsa"});
    chart.addGroup("gcc", {10.0, 8.0});
    chart.addGroup("go", {5.0, 6.0});
    std::ostringstream os;
    chart.print(os, 20);
    const std::string s = os.str();
    EXPECT_NE(s.find("gcc"), std::string::npos);
    EXPECT_NE(s.find("go"), std::string::npos);
    EXPECT_NE(s.find("conv"), std::string::npos);
    EXPECT_NE(s.find("bsa"), std::string::npos);
}

TEST(Stats, SetAddGet)
{
    StatSet stats;
    stats.set("cycles", 100, "total cycles");
    stats.add("cycles", 5);
    stats.add("misses", 2);
    EXPECT_DOUBLE_EQ(stats.get("cycles"), 105);
    EXPECT_DOUBLE_EQ(stats.get("misses"), 2);
    EXPECT_TRUE(stats.has("cycles"));
    EXPECT_FALSE(stats.has("nothing"));
}

TEST(Env, DefaultsAndParses)
{
    ::unsetenv("BSISA_TEST_ENV");
    EXPECT_EQ(envU64("BSISA_TEST_ENV", 7), 7u);
    ::setenv("BSISA_TEST_ENV", "123", 1);
    EXPECT_EQ(envU64("BSISA_TEST_ENV", 7), 123u);
    ::setenv("BSISA_TEST_ENV", "0x10", 1);
    EXPECT_EQ(envU64("BSISA_TEST_ENV", 7), 16u);
    ::unsetenv("BSISA_TEST_ENV");
}
