/**
 * @file
 * Unit tests for the support layer: RNG determinism and distributions,
 * saturating counters, bit utilities, tables, and the stats registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/bitutil.hh"
#include "support/digest.hh"
#include "support/env.hh"
#include "support/rng.hh"
#include "support/sat_counter.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/varint.hh"

using namespace bsisa;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(7);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++hits[rng.nextBelow(8)];
    for (int h : hits)
        EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, SizeDrawMeanAndCap)
{
    Rng rng(17);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const unsigned v = rng.sizeDraw(5.0, 16);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 16u);
        sum += v;
    }
    // Mean is pulled below 5 by the cap; accept a loose band.
    EXPECT_GT(sum / n, 3.5);
    EXPECT_LT(sum / n, 5.5);
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng b = a.fork();
    // Streams should not be identical.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(SatCounter, TwoBitStateMachine)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predictTaken());
    c.train(true);   // 1
    EXPECT_FALSE(c.predictTaken());
    c.train(true);   // 2
    EXPECT_TRUE(c.predictTaken());
    c.train(true);   // 3
    c.train(true);   // saturates at 3
    EXPECT_EQ(c.value(), 3u);
    c.train(false);  // 2
    EXPECT_TRUE(c.predictTaken());
    c.train(false);  // 1
    EXPECT_FALSE(c.predictTaken());
    c.train(false);
    c.train(false);  // saturates at 0
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, OneBit)
{
    SatCounter c(1, 0);
    EXPECT_FALSE(c.predictTaken());
    c.train(true);
    EXPECT_TRUE(c.predictTaken());
    c.train(false);
    EXPECT_FALSE(c.predictTaken());
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(8), 3u);
    EXPECT_EQ(ceilLog2(9), 4u);
}

TEST(BitUtil, PowerOfTwoAndMask)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(3), 7u);
    EXPECT_EQ(lowMask(64), ~0ULL);
}

TEST(Table, AlignsAndFormats)
{
    Table t({"name", "value"});
    t.addRow({"alpha", Table::fmt(std::uint64_t(42))});
    t.addRow({"b", Table::fmt(3.14159, 2)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, ThousandsSeparator)
{
    EXPECT_EQ(Table::fmtSep(0), "0");
    EXPECT_EQ(Table::fmtSep(999), "999");
    EXPECT_EQ(Table::fmtSep(1000), "1,000");
    EXPECT_EQ(Table::fmtSep(103015025), "103,015,025");
}

TEST(BarChart, RendersAllSeries)
{
    BarChart chart("demo", {"conv", "bsa"});
    chart.addGroup("gcc", {10.0, 8.0});
    chart.addGroup("go", {5.0, 6.0});
    std::ostringstream os;
    chart.print(os, 20);
    const std::string s = os.str();
    EXPECT_NE(s.find("gcc"), std::string::npos);
    EXPECT_NE(s.find("go"), std::string::npos);
    EXPECT_NE(s.find("conv"), std::string::npos);
    EXPECT_NE(s.find("bsa"), std::string::npos);
}

TEST(Stats, SetAddGet)
{
    StatSet stats;
    stats.set("cycles", 100, "total cycles");
    stats.add("cycles", 5);
    stats.add("misses", 2);
    EXPECT_DOUBLE_EQ(stats.get("cycles"), 105);
    EXPECT_DOUBLE_EQ(stats.get("misses"), 2);
    EXPECT_TRUE(stats.has("cycles"));
    EXPECT_FALSE(stats.has("nothing"));
}

TEST(Env, DefaultsAndParses)
{
    ::unsetenv("BSISA_TEST_ENV");
    EXPECT_EQ(envU64("BSISA_TEST_ENV", 7), 7u);
    ::setenv("BSISA_TEST_ENV", "123", 1);
    EXPECT_EQ(envU64("BSISA_TEST_ENV", 7), 123u);
    ::setenv("BSISA_TEST_ENV", "0x10", 1);
    EXPECT_EQ(envU64("BSISA_TEST_ENV", 7), 16u);
    ::unsetenv("BSISA_TEST_ENV");
}

TEST(Env, EnvSet)
{
    ::unsetenv("BSISA_TEST_ENV");
    EXPECT_FALSE(envSet("BSISA_TEST_ENV"));
    ::setenv("BSISA_TEST_ENV", "", 1);
    EXPECT_FALSE(envSet("BSISA_TEST_ENV"));
    ::setenv("BSISA_TEST_ENV", "x", 1);
    EXPECT_TRUE(envSet("BSISA_TEST_ENV"));
    ::unsetenv("BSISA_TEST_ENV");
}

TEST(Digest, Fnv1a64KnownVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Digest, IncrementalMatchesOneShot)
{
    const std::string s = "the committed dynamic block stream";
    Fnv1a64 h;
    h.bytes(s.data(), 10).bytes(s.data() + 10, s.size() - 10);
    EXPECT_EQ(h.value(), fnv1a64(s));
}

TEST(Digest, U64IsOrderAndWidthSensitive)
{
    const std::uint64_t a = Fnv1a64().u64(1).u64(2).value();
    const std::uint64_t b = Fnv1a64().u64(2).u64(1).value();
    EXPECT_NE(a, b);
    // u64 always absorbs 8 bytes: (1,2) differs from bytes{1,2}.
    const std::uint8_t two[] = {1, 2};
    EXPECT_NE(a, fnv1a64(two, sizeof(two)));
}

TEST(Digest, WordVariantDetectsChangesAndLengths)
{
    // Any flipped byte — in a full word or in the zero-padded tail —
    // changes the digest, and the length absorb separates inputs
    // that pad to the same words.
    std::uint8_t buf[19] = {};
    for (std::size_t i = 0; i < sizeof(buf); ++i)
        buf[i] = std::uint8_t(i * 7 + 1);
    const std::uint64_t base = fnv1a64Words(buf, sizeof(buf));
    for (std::size_t i = 0; i < sizeof(buf); ++i) {
        buf[i] ^= 0x20;
        EXPECT_NE(fnv1a64Words(buf, sizeof(buf)), base) << i;
        buf[i] ^= 0x20;
    }
    EXPECT_EQ(fnv1a64Words(buf, sizeof(buf)), base);

    const std::uint8_t zeros[16] = {};
    EXPECT_NE(fnv1a64Words(zeros, 1), fnv1a64Words(zeros, 8));
    EXPECT_NE(fnv1a64Words(zeros, 8), fnv1a64Words(zeros, 16));
    EXPECT_NE(fnv1a64Words(zeros, 0), fnv1a64Words(zeros, 1));

    // Empty input is well-defined and never reads the pointer.
    EXPECT_EQ(fnv1a64Words(nullptr, 0), fnv1a64Words(zeros, 0));
}

TEST(Varint, RoundTripsRepresentativeValues)
{
    const std::uint64_t values[] = {
        0,    1,     127,        128,        16383, 16384,
        1234, 99999, 1ull << 32, 1ull << 62, ~0ull};
    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : values)
        putVarint(buf, v);
    const std::uint8_t *p = buf.data();
    const std::uint8_t *end = buf.data() + buf.size();
    for (std::uint64_t v : values) {
        std::uint64_t got = 0;
        ASSERT_TRUE(getVarint(p, end, got));
        EXPECT_EQ(got, v);
    }
    EXPECT_EQ(p, end);
}

TEST(Varint, EncodedSizeTracksMagnitude)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 5);
    EXPECT_EQ(buf.size(), 1u);
    buf.clear();
    putVarint(buf, 300);
    EXPECT_EQ(buf.size(), 2u);
    buf.clear();
    putVarint(buf, ~0ull);
    EXPECT_EQ(buf.size(), 10u);
}

TEST(Varint, RejectsTruncatedAndOverlong)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 1ull << 40);
    std::uint64_t v = 0;
    for (std::size_t cut = 0; cut + 1 < buf.size(); ++cut) {
        const std::uint8_t *p = buf.data();
        EXPECT_FALSE(getVarint(p, p + cut, v));
    }
    // 11-byte continuation run cannot fit in 64 bits.
    const std::uint8_t overlong[11] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                                       0x80, 0x80, 0x80, 0x80, 0x01};
    const std::uint8_t *p = overlong;
    EXPECT_FALSE(getVarint(p, overlong + sizeof(overlong), v));
}

TEST(Varint, ZigzagRoundTrip)
{
    const std::int64_t values[] = {0, -1, 1, -2, 2, 63, -64,
                                   std::int64_t(1) << 40,
                                   -(std::int64_t(1) << 40),
                                   INT64_MAX, INT64_MIN};
    for (std::int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    // Small magnitudes map to small codes (1-byte varints).
    EXPECT_LT(zigzagEncode(-3), 8u);
    EXPECT_LT(zigzagEncode(3), 8u);
}
