/**
 * @file
 * Tests of the sweep service's layers below the process boundary:
 *
 *   spec    — parse/validate/canonicalise/digest: two spellings of
 *             one experiment share a digest, any semantic change
 *             moves it, every rejection carries a message.
 *   plan    — grid expansion order, config-digest field sensitivity,
 *             and cross-point dedup (coinciding grid points collapse
 *             to one unit serving both).
 *   store   — bit-exact round trip, torn-tail repair that keeps the
 *             intact prefix, bad-shard skip, and deterministic
 *             compaction (same content => byte-identical snapshot)
 *             that survives trailing-slash directory spellings and
 *             preserves live writers' open shards.
 *   lease   — exclusive acquire, peer conflict, release, the
 *             stale-break of a dead holder's lease, atomic
 *             pid-with-create publication, and the malformed-lease
 *             grace window.
 *   worker  — an in-process end-to-end run whose stored PairResults
 *             are bit-identical to monolithic runPair, and a
 *             store-rendered figure byte-identical to the monolithic
 *             driver's output.
 *
 * The process-level crash-resume property (SIGKILL mid-grid) lives in
 * test_sweep_service.cc, which drives the real bsisa-sweep binary.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "exp/figures.hh"
#include "exp/plan.hh"
#include "exp/result_store.hh"
#include "exp/service.hh"
#include "exp/spec.hh"
#include "support/lockfile.hh"

using namespace bsisa;

namespace
{

SweepSpec
mustParse(const std::string &text)
{
    SweepSpec spec;
    std::string error;
    const bool ok = parseSweepSpec(text, spec, error);
    EXPECT_TRUE(ok) << error;
    return spec;
}

std::string
parseError(const std::string &text)
{
    SweepSpec spec;
    std::string error;
    EXPECT_FALSE(parseSweepSpec(text, spec, error)) << text;
    EXPECT_FALSE(error.empty());
    return error;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A scratch directory per test, removed on teardown. */
class SweepDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (std::filesystem::temp_directory_path() /
               ("bsisa-test-sweep-" + std::to_string(::getpid()) +
                "-" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name()))
                  .string();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        std::filesystem::create_directories(dir);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string dir;
};

ResultRecord
testRecord(std::uint64_t key)
{
    PairResult pair;
    pair.conv.cycles = key * 3 + 1;
    pair.bsa.cycles = key * 2 + 1;
    pair.enlarge.atomicBlocks = std::size_t(key);
    return makeResultRecord(key, key ^ 0x1111, key ^ 0x2222, pair);
}

} // namespace

// ---------------------------------------------------------------- spec

TEST(SweepSpec_, ParsesFullGrammar)
{
    const SweepSpec spec = mustParse(
        "# comment\n"
        "name: demo\n"
        "scale: 400\n"
        "budget_div: 2\n"
        "benchmarks: [compress, go]\n"
        "figure: none\n"
        "chunk_units: 3\n"
        "base:\n"
        "  issue_width: 8\n"
        "  predictor_scheme: PAs\n"
        "axes:\n"
        "  icache_kb: [16, 64]\n"
        "  history_bits: [8, 12]\n"
        "points:\n"
        "  - {icache_kb: 32, perfect_prediction: true}\n");
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.effectiveScale(), 400u);
    EXPECT_EQ(spec.budgetDiv, 2u);
    EXPECT_EQ(spec.chunkUnits, 3u);
    ASSERT_EQ(spec.benchmarks.size(), 2u);
    ASSERT_EQ(spec.axes.size(), 2u);
    EXPECT_EQ(spec.axes[0].first, "icache_kb");
    EXPECT_EQ(spec.axes[1].second.size(), 2u);
    ASSERT_EQ(spec.points.size(), 1u);
    // 2x2 cross product + 1 explicit point.
    EXPECT_EQ(spec.pointsPerBenchmark(), 5u);
}

TEST(SweepSpec_, SuiteKeywordExpandsToAllBenchmarks)
{
    const SweepSpec spec = mustParse("name: s\nbenchmarks: suite\n");
    EXPECT_EQ(spec.benchmarks.size(), 8u);
    // No axes, no points: the implicit base point.
    EXPECT_EQ(spec.pointsPerBenchmark(), 1u);
}

TEST(SweepSpec_, CanonicalFormIsAFixpoint)
{
    const SweepSpec spec = mustParse(
        "benchmarks: [go, compress]\n"
        "axes:\n"
        "  icache_kb: [16, 64]\n"
        "base: {perfect_prediction: true}\n"
        "name: \"demo\"\n");
    const std::string canon = canonicalSpec(spec);
    const SweepSpec again = mustParse(canon);
    EXPECT_EQ(canonicalSpec(again), canon);
    EXPECT_EQ(specDigest(again), specDigest(spec));
}

TEST(SweepSpec_, DigestIgnoresSpellingButNotSemantics)
{
    // Same experiment, different spelling: comments, key order,
    // quoting, numeric bases.
    const SweepSpec a = mustParse(
        "name: x\n"
        "benchmarks: [compress]\n"
        "base:\n"
        "  issue_width: 16\n"
        "  l2_latency: 6\n"
        "axes:\n"
        "  history_bits: [8, 12]\n");
    const SweepSpec b = mustParse(
        "# reordered keys, flow maps, quoted scalars\n"
        "axes:\n"
        "  history_bits: [\"8\", 12]\n"
        "base: {l2_latency: 6, issue_width: 16}\n"
        "benchmarks: [\"compress\"]\n"
        "name: \"x\"\n");
    EXPECT_EQ(specDigest(a), specDigest(b));

    // Any semantic change moves the digest.
    const SweepSpec c = mustParse(
        "name: x\nbenchmarks: [compress]\n"
        "base: {issue_width: 16, l2_latency: 7}\n"
        "axes:\n"
        "  history_bits: [8, 12]\n");
    EXPECT_NE(specDigest(a), specDigest(c));
}

TEST(SweepSpec_, RejectsBadInput)
{
    parseError("benchmarks: [compress]\n");             // no name
    parseError("name: x\n");                            // no benchmarks
    parseError("name: x\nbenchmarks: [nosuch]\n");      // unknown bench
    parseError("name: x\nbenchmarks: [go, go]\n");      // duplicate
    parseError("name: x\nname: y\nbenchmarks: [go]\n"); // dup key
    parseError("name: x\nbenchmarks: [go]\n\tbase:\n"); // tab indent
    parseError("name: x\nbenchmarks: [go]\n"
               "base: {warp_factor: 9}\n");             // unknown key
    parseError("name: x\nbenchmarks: [go]\n"
               "base: {issue_width: fast}\n");          // bad value
    parseError("name: x\nbenchmarks: [go]\nscale: 0\n");
    // A figure needs exactly one point per benchmark.
    parseError("name: x\nbenchmarks: suite\nfigure: cycles\n"
               "axes: {icache_kb: [16, 64]}\n");
}

TEST(SweepSpec_, ConfigKeysReachTheirFields)
{
    RunConfig config;
    std::string error;
    ASSERT_TRUE(applyConfigKey(config, "issue_width", "16", error));
    ASSERT_TRUE(applyConfigKey(config, "icache_kb", "64", error));
    ASSERT_TRUE(
        applyConfigKey(config, "predictor_scheme", "PAs", error));
    ASSERT_TRUE(
        applyConfigKey(config, "perfect_prediction", "true", error));
    ASSERT_TRUE(
        applyConfigKey(config, "min_merge_bias", "0.75", error));
    ASSERT_TRUE(
        applyConfigKey(config, "enlarge_max_ops", "32", error));
    ASSERT_TRUE(
        applyConfigKey(config, "timing_model", "ooo", error));
    EXPECT_EQ(config.machine.timingModel, TimingModel::Ooo);
    ASSERT_TRUE(
        applyConfigKey(config, "timing_model", "abstract", error));
    EXPECT_EQ(config.machine.timingModel, TimingModel::Abstract);
    EXPECT_FALSE(
        applyConfigKey(config, "timing_model", "cycle", error));
    ASSERT_TRUE(applyConfigKey(config, "rob_ops", "96", error));
    ASSERT_TRUE(applyConfigKey(config, "phys_regs", "80", error));
    ASSERT_TRUE(applyConfigKey(config, "rs_per_class", "12", error));
    ASSERT_TRUE(applyConfigKey(config, "lsq_entries", "24", error));
    ASSERT_TRUE(applyConfigKey(config, "commit_width", "8", error));
    EXPECT_EQ(config.machine.ooo.robOps, 96u);
    EXPECT_EQ(config.machine.ooo.physRegs, 80u);
    EXPECT_EQ(config.machine.ooo.rsPerClass, 12u);
    EXPECT_EQ(config.machine.ooo.lsqEntries, 24u);
    EXPECT_EQ(config.machine.ooo.commitWidth, 8u);
    EXPECT_EQ(config.machine.issueWidth, 16u);
    EXPECT_EQ(config.machine.icache.sizeBytes, 64u * 1024u);
    EXPECT_EQ(config.machine.predictor.scheme,
              PredictorScheme::PAs);
    EXPECT_TRUE(config.machine.perfectPrediction);
    EXPECT_DOUBLE_EQ(config.minMergeBias, 0.75);
    EXPECT_EQ(config.enlarge.maxOps, 32u);

    EXPECT_FALSE(applyConfigKey(config, "nope", "1", error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------- plan

TEST(SweepPlan_, ConfigDigestIsFieldSensitive)
{
    RunConfig base;
    const std::uint64_t baseDigest = runConfigDigest(base);
    EXPECT_EQ(runConfigDigest(base), baseDigest);  // stable

    const char *keys[] = {
        "issue_width",     "window_ops",       "frontend_depth",
        "redirect_penalty", "l2_latency",      "icache_kb",
        "icache_assoc",    "dcache_kb",        "history_bits",
        "pht_bits",        "btb_entries",      "perfect_prediction",
        "icache_perfect",  "enlarge_max_ops",  "enlarge_max_faults",
        "merge_across_back_edges",             "min_merge_bias",
        "max_variants_per_head",
    };
    for (const char *key : keys) {
        RunConfig mutated;
        std::string error;
        // "5" differs from every numeric default in the vocabulary.
        const std::string value =
            std::string(key) == std::string("min_merge_bias")
                ? "0.123"
                : (std::string(key).find("perfect") !=
                               std::string::npos ||
                           std::string(key) ==
                               "merge_across_back_edges"
                       ? "true"
                       : "5");
        ASSERT_TRUE(applyConfigKey(mutated, key, value, error))
            << key << ": " << error;
        EXPECT_NE(runConfigDigest(mutated), baseDigest) << key;
    }

    // The timing-model axis and the OoO structure sizes it gates are
    // part of the identity: a sweep comparing backends must never
    // alias its points onto one stored result.
    {
        RunConfig mutated;
        std::string error;
        ASSERT_TRUE(
            applyConfigKey(mutated, "timing_model", "ooo", error))
            << error;
        EXPECT_NE(runConfigDigest(mutated), baseDigest);
    }
    for (auto field : {&OooParams::robOps, &OooParams::physRegs,
                       &OooParams::rsPerClass, &OooParams::lsqEntries,
                       &OooParams::commitWidth}) {
        RunConfig mutated;
        mutated.machine.ooo.*field += 1;
        EXPECT_NE(runConfigDigest(mutated), baseDigest);
    }

    // The trace budget is part of the identity too.
    RunConfig budget;
    budget.limits.maxOps += 1;
    EXPECT_NE(runConfigDigest(budget), baseDigest);
}

TEST(SweepPlan_, GridExpansionOrderAndCollapse)
{
    const SweepSpec spec = mustParse(
        "name: grid\n"
        "scale: 2000\n"
        "benchmarks: [compress]\n"
        "base: {issue_width: 8}\n"
        "axes:\n"
        "  icache_kb: [16, 64]\n"
        "  history_bits: [8, 12]\n"
        "points:\n"
        "  - {icache_kb: 16, history_bits: 8}\n");

    Interp::Limits limits;
    limits.maxOps = 1000;
    std::vector<RunConfig> grid;
    std::string error;
    ASSERT_TRUE(expandGrid(spec, limits, grid, error)) << error;
    ASSERT_EQ(grid.size(), 5u);
    // First axis outermost: icache 16,16,64,64; history 8,12,8,12.
    EXPECT_EQ(grid[0].machine.icache.sizeBytes, 16u * 1024u);
    EXPECT_EQ(grid[1].machine.icache.sizeBytes, 16u * 1024u);
    EXPECT_EQ(grid[2].machine.icache.sizeBytes, 64u * 1024u);
    EXPECT_EQ(grid[0].machine.predictor.historyBits, 8u);
    EXPECT_EQ(grid[1].machine.predictor.historyBits, 12u);
    // The explicit point coincides with grid point 0.
    EXPECT_EQ(runConfigDigest(grid[4]), runConfigDigest(grid[0]));

    SweepPlan plan;
    ASSERT_TRUE(buildPlan(spec, 0, plan, error)) << error;
    EXPECT_EQ(plan.gridPoints(), 5u);
    // ...so the plan holds 4 units, one serving two points.
    ASSERT_EQ(plan.units.size(), 4u);
    EXPECT_EQ(plan.pointUnit[4], plan.pointUnit[0]);
    std::size_t twoPointUnits = 0;
    for (const WorkUnit &unit : plan.units)
        if (unit.pointIds.size() == 2)
            ++twoPointUnits;
    EXPECT_EQ(twoPointUnits, 1u);

    // Chunk carving: cap 3 over 4 units -> chunks of 3 + 1, keys
    // distinct, every unit in exactly one chunk.
    SweepPlan chunked;
    ASSERT_TRUE(buildPlan(spec, 3, chunked, error)) << error;
    ASSERT_EQ(chunked.chunks.size(), 2u);
    EXPECT_EQ(chunked.chunks[0].size(), 3u);
    EXPECT_EQ(chunked.chunks[1].size(), 1u);
    EXPECT_NE(chunked.chunkKeys[0], chunked.chunkKeys[1]);
}

// --------------------------------------------------------------- store

TEST_F(SweepDirTest, StoreRoundTripIsBitExact)
{
    ResultStore writer(dir);
    for (std::uint64_t key : {7u, 3u, 11u})
        ASSERT_TRUE(writer.append(testRecord(key)));

    ResultStore reader(dir);
    const ResultScanStats stats = reader.refresh();
    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.tornTails, 0u);
    EXPECT_EQ(stats.badShards, 0u);
    for (std::uint64_t key : {3u, 7u, 11u}) {
        const ResultRecord *got = reader.find(key);
        ASSERT_NE(got, nullptr);
        const ResultRecord want = testRecord(key);
        EXPECT_EQ(std::memcmp(got, &want, sizeof(want)), 0);
    }
    EXPECT_FALSE(reader.contains(12345));
}

TEST_F(SweepDirTest, TornTailKeepsIntactPrefix)
{
    {
        ResultStore writer(dir);
        for (std::uint64_t key = 1; key <= 4; ++key)
            ASSERT_TRUE(writer.append(testRecord(key)));
    }
    // Tear the final frame: chop 5 bytes off the single shard.
    std::string shardPath;
    for (const auto &de : std::filesystem::directory_iterator(dir))
        shardPath = de.path().string();
    ASSERT_FALSE(shardPath.empty());
    const auto size = std::filesystem::file_size(shardPath);
    std::filesystem::resize_file(shardPath, size - 5);

    ResultStore reader(dir);
    const ResultScanStats stats = reader.refresh();
    EXPECT_EQ(stats.tornTails, 1u);
    EXPECT_EQ(stats.records, 3u);  // only the torn record is lost
    EXPECT_TRUE(reader.contains(3));
    EXPECT_FALSE(reader.contains(4));

    // A corrupted *byte* in an intact record is also a torn tail:
    // the checksum catches it and the scan stops there, keeping the
    // records before it (16-byte shard header, then 16-byte frame
    // headers — aim inside the second record's payload).
    std::string bytes = readFileBytes(shardPath);
    bytes[16 + (16 + sizeof(ResultRecord)) + 16 + 40] ^= 0x40;
    std::ofstream(shardPath, std::ios::binary | std::ios::trunc)
        << bytes;
    const ResultScanStats again = reader.refresh();
    EXPECT_EQ(again.tornTails, 1u);
    EXPECT_EQ(again.records, 1u);
    EXPECT_TRUE(reader.contains(1));
    EXPECT_FALSE(reader.contains(2));
}

TEST_F(SweepDirTest, BadShardIsSkippedNotFatal)
{
    ResultStore writer(dir);
    ASSERT_TRUE(writer.append(testRecord(1)));
    std::ofstream(dir + "/junk.bsr", std::ios::binary)
        << "not a shard at all";

    ResultStore reader(dir);
    const ResultScanStats stats = reader.refresh();
    EXPECT_EQ(stats.badShards, 1u);
    EXPECT_EQ(stats.records, 1u);
}

TEST_F(SweepDirTest, CompactionIsDeterministic)
{
    const std::string dirB = dir + "-b";
    std::filesystem::create_directories(dirB);

    // Same records, different shard layout and append order — plus a
    // duplicate in one store.
    {
        ResultStore a(dir);
        for (std::uint64_t key : {5u, 1u, 9u})
            ASSERT_TRUE(a.append(testRecord(key)));
        ASSERT_TRUE(a.compact());
    }
    {
        ResultStore b1(dirB);
        ASSERT_TRUE(b1.append(testRecord(9)));
        ASSERT_TRUE(b1.append(testRecord(5)));
        ResultStore b2(dirB);  // second "process": its own shard
        ASSERT_TRUE(b2.append(testRecord(1)));
        ASSERT_TRUE(b2.append(testRecord(5)));  // racing duplicate
        b2.refresh();
        EXPECT_EQ(b2.refresh().duplicates, 1u);
        ASSERT_TRUE(b2.compact());
    }

    EXPECT_EQ(readFileBytes(dir + "/snapshot.bsr"),
              readFileBytes(dirB + "/snapshot.bsr"));
    // Compaction unlinked the merged shards.
    std::size_t filesLeft = 0;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        (void)de;
        ++filesLeft;
    }
    EXPECT_EQ(filesLeft, 1u);

    std::error_code ec;
    std::filesystem::remove_all(dirB, ec);
}

TEST_F(SweepDirTest, CompactionHandlesTrailingSlashDir)
{
    // Regression: compact() used to compare scanned paths to the
    // snapshot path by raw string, so `dir/` yielded `dir//snapshot`
    // vs `dir/snapshot` — same inode, unequal strings — and the
    // freshly published snapshot was unlinked along with the shards,
    // destroying the whole store.
    {
        ResultStore writer(dir + "/");
        ASSERT_TRUE(writer.append(testRecord(1)));
        ASSERT_TRUE(writer.append(testRecord(2)));
        ASSERT_TRUE(writer.compact());
    }
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/snapshot.bsr"));
    std::size_t filesLeft = 0;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        (void)de;
        ++filesLeft;
    }
    EXPECT_EQ(filesLeft, 1u);

    ResultStore reader(dir);
    EXPECT_EQ(reader.refresh().records, 2u);
    EXPECT_TRUE(reader.contains(1));
    EXPECT_TRUE(reader.contains(2));

    // A second compaction through the slashed spelling is also safe.
    ResultStore again(dir + "//");
    ASSERT_TRUE(again.compact());
    EXPECT_EQ(again.refresh().records, 2u);
}

TEST_F(SweepDirTest, CompactionKeepsLiveWritersShards)
{
    // A shard whose name carries a live foreign pid belongs to a
    // worker that still holds it open: compaction must merge its
    // records but leave the file in place, or the worker's later
    // appends vanish into an unlinked inode.  A dead writer's shard
    // is fully merged and safe to drop.
    const pid_t deadChild = ::fork();
    ASSERT_GE(deadChild, 0);
    if (deadChild == 0)
        ::_exit(0);
    int status = 0;
    ASSERT_EQ(::waitpid(deadChild, &status, 0), deadChild);

    const auto craftShard = [&](std::uint64_t key,
                                const std::string &name) {
        const std::string dirB = dir + "-craft";
        std::filesystem::create_directories(dirB);
        {
            ResultStore tmp(dirB);
            ASSERT_TRUE(tmp.append(testRecord(key)));
        }
        for (const auto &de :
             std::filesystem::directory_iterator(dirB))
            std::filesystem::rename(de.path(), dir + "/" + name);
        std::error_code ec;
        std::filesystem::remove_all(dirB, ec);
    };
    const std::string liveShard =
        "shard-" + std::to_string(::getppid()) + "-42.bsr";
    const std::string deadShard =
        "shard-" + std::to_string(deadChild) + "-43.bsr";
    craftShard(3, liveShard);
    craftShard(4, deadShard);

    ResultStore store(dir);
    ASSERT_TRUE(store.append(testRecord(1)));
    ASSERT_TRUE(store.compact());

    EXPECT_TRUE(std::filesystem::exists(dir + "/" + liveShard));
    EXPECT_FALSE(std::filesystem::exists(dir + "/" + deadShard));
    ResultStore reader(dir);
    EXPECT_EQ(reader.refresh().records, 3u);
    for (std::uint64_t key : {1u, 3u, 4u})
        EXPECT_TRUE(reader.contains(key));
}

// --------------------------------------------------------------- lease

TEST_F(SweepDirTest, LeaseIsExclusiveUntilReleased)
{
    const std::string path = dir + "/chunk.lease";
    FileLease first;
    ASSERT_TRUE(first.tryAcquire(path));
    EXPECT_TRUE(first.held());
    EXPECT_EQ(leaseHolderPid(path), std::uint64_t(::getpid()));
    EXPECT_TRUE(processAlive(std::uint64_t(::getpid())));

    FileLease second;
    EXPECT_FALSE(second.tryAcquire(path));  // we are alive

    first.release();
    EXPECT_FALSE(first.held());
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(second.tryAcquire(path));
}

TEST_F(SweepDirTest, DeadHoldersLeaseIsBroken)
{
    // A real dead pid: fork a child that exits immediately, reap it.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        ::_exit(0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_FALSE(processAlive(std::uint64_t(child)));

    const std::string path = dir + "/stale.lease";
    std::ofstream(path) << "pid " << child << "\n";
    FileLease lease;
    EXPECT_TRUE(lease.tryAcquire(path));
    EXPECT_EQ(leaseHolderPid(path), std::uint64_t(::getpid()));
}

TEST_F(SweepDirTest, AcquireLeavesNoTempLitterAndWritesPidAtomically)
{
    const std::string path = dir + "/atomic.lease";
    FileLease lease;
    ASSERT_TRUE(lease.tryAcquire(path));
    // The lease is created with its pid line already in place (temp +
    // link), and the temp is gone by the time tryAcquire returns.
    EXPECT_EQ(leaseHolderPid(path), std::uint64_t(::getpid()));
    std::size_t files = 0;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        (void)de;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(SweepDirTest, MalformedLeaseIsStaleOnlyAfterGrace)
{
    // A lease file with no parseable pid (foreign writer, torn byte)
    // must not park workers forever: it is honored for a short mtime
    // grace window, then broken.
    const std::string path = dir + "/weird.lease";
    std::ofstream(path) << "not a lease\n";
    ASSERT_EQ(leaseHolderPid(path), 0u);

    FileLease lease;
    EXPECT_FALSE(lease.tryAcquire(path));  // fresh: honored

    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now() -
                  std::chrono::seconds(30));
    EXPECT_TRUE(lease.tryAcquire(path));  // past grace: stale
    EXPECT_EQ(leaseHolderPid(path), std::uint64_t(::getpid()));
}

// -------------------------------------------------------------- worker

namespace
{

class WorkerFixture : public SweepDirTest
{
  protected:
    void
    SetUp() override
    {
        SweepDirTest::SetUp();
        ::setenv("BSISA_SCALE", "2000", 1);
    }

    void
    TearDown() override
    {
        ::unsetenv("BSISA_SCALE");
        SweepDirTest::TearDown();
    }
};

} // namespace

TEST_F(WorkerFixture, WorkerFailsFastOnUnwritableStore)
{
    // A store that cannot be created (here: nested under a regular
    // file, which fails even for root) must fail the worker up front
    // instead of letting it spin forever in the peer-wait loop.
    std::ofstream(dir + "/blocker") << "x";

    const SweepSpec spec = mustParse(
        "name: unwritable\n"
        "scale: 2000\n"
        "benchmarks: [compress]\n");
    std::ostringstream log;
    SweepWorkerOptions opts;
    opts.storeDir = dir + "/blocker/store";
    opts.log = &log;
    const SweepWorkerOutcome outcome = runSweepWorker(spec, opts);
    EXPECT_FALSE(outcome.complete);
    EXPECT_EQ(outcome.executed, 0u);
    EXPECT_NE(log.str().find("not writable"), std::string::npos)
        << log.str();
}

TEST_F(WorkerFixture, EndToEndMatchesMonolithicRunPair)
{
    const SweepSpec spec = mustParse(
        "name: e2e\n"
        "scale: 2000\n"
        "benchmarks: [compress, go]\n"
        "axes:\n"
        "  icache_kb: [16, 64]\n");

    SweepWorkerOptions opts;
    opts.storeDir = dir;
    const SweepWorkerOutcome outcome = runSweepWorker(spec, opts);
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.units, 4u);
    EXPECT_EQ(outcome.executed, 4u);
    EXPECT_EQ(outcome.warm, 0u);

    // Every stored result is bit-identical to a monolithic runPair of
    // the same module + config.
    SweepPlan plan;
    std::string error;
    ASSERT_TRUE(buildPlan(spec, 0, plan, error)) << error;
    ResultStore store(dir);
    store.refresh();
    ASSERT_EQ(store.size(), plan.units.size());
    for (const WorkUnit &unit : plan.units) {
        const ResultRecord *got = store.find(unit.key);
        ASSERT_NE(got, nullptr);
        const PairResult want =
            runPair(plan.modules[unit.bench], unit.config);
        EXPECT_EQ(std::memcmp(&got->pair, &want, sizeof(want)), 0);
    }

    // A second worker run over the same store is fully warm (and the
    // plan marker fast path reports completion without a plan).
    const SweepWorkerOutcome warm = runSweepWorker(spec, opts);
    EXPECT_TRUE(warm.complete);
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.warm, warm.units);
}

TEST_F(WorkerFixture, StoreRenderedFigureMatchesMonolithicDriver)
{
    const SweepSpec spec = mustParse(
        "name: fig\n"
        "scale: 2000\n"
        "benchmarks: suite\n"
        "figure: cycles\n");

    SweepWorkerOptions opts;
    opts.storeDir = dir;
    ASSERT_TRUE(runSweepWorker(spec, opts).complete);

    std::ostringstream fromStore;
    std::string error;
    ASSERT_TRUE(
        renderSweepFromStore(fromStore, spec, dir, error))
        << error;

    std::ostringstream monolithic;
    runCycleComparison(monolithic, false);
    EXPECT_EQ(fromStore.str(), monolithic.str());
}
