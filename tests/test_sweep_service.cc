/**
 * @file
 * Process-level crash-resume test of the sweep service, driving the
 * real bsisa-sweep binary (path injected as BSISA_SWEEP_BIN).
 *
 * The property under test is the service's headline guarantee: a
 * `kill -9` of a worker mid-grid costs nothing but the units it had
 * not yet published.  Concretely:
 *
 *   1. A worker is started with BSISA_SWEEP_STALL_AFTER=3, which
 *      parks it forever right after its third published record —
 *      a deterministic mid-grid checkpoint, lease still held.
 *   2. The test waits for the three records to land, then SIGKILLs
 *      the parked worker: on disk are three intact frames, a shard
 *      with no footer ceremony, and a lease naming a dead pid.
 *   3. A fresh worker on the same store must (a) break the dead
 *      holder's lease, (b) execute exactly total-3 units — the three
 *      stored ones count as warm, none re-executed — and complete.
 *   4. After compaction the store's snapshot is byte-identical to
 *      that of an uninterrupted run in a clean directory: the crash
 *      left no trace in the final artifact.
 *
 * Traces are shared through one BSISA_TRACE_DIR so the resumed and
 * reference runs replay the same captures (and run fast).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exp/result_store.hh"

using namespace bsisa;

namespace
{

struct WorkerReport
{
    int exitStatus = -1;
    bool signaled = false;
    std::size_t units = 0;
    std::size_t executed = 0;
    std::size_t warm = 0;
};

class SweepServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root = (std::filesystem::temp_directory_path() /
                ("bsisa-test-service-" + std::to_string(::getpid())))
                   .string();
        std::error_code ec;
        std::filesystem::remove_all(root, ec);
        std::filesystem::create_directories(root);

        specPath = root + "/grid.yml";
        std::ofstream(specPath)
            << "name: crash-resume\n"
               "scale: 2000\n"
               "benchmarks: [compress, go]\n"
               "chunk_units: 2\n"
               "axes:\n"
               "  icache_kb: [16, 64]\n"
               "  history_bits: [8, 12]\n";
        // 2 benchmarks x 4 grid points = 8 units, 4 lease chunks.
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(root, ec);
    }

    /** Spawn `bsisa-sweep worker` on @p storeDir; stderr to a file. */
    pid_t
    spawnWorker(const std::string &storeDir, const char *stallAfter,
                const std::string &errPath)
    {
        const pid_t pid = ::fork();
        if (pid != 0)
            return pid;
        const int err =
            ::open(errPath.c_str(),
                   O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (err >= 0) {
            ::dup2(err, 2);
            ::close(err);
        }
        ::setenv("BSISA_TRACE_DIR", (root + "/traces").c_str(), 1);
        if (stallAfter)
            ::setenv("BSISA_SWEEP_STALL_AFTER", stallAfter, 1);
        else
            ::unsetenv("BSISA_SWEEP_STALL_AFTER");
        ::execl(BSISA_SWEEP_BIN, BSISA_SWEEP_BIN, "worker",
                specPath.c_str(), "--store", storeDir.c_str(),
                (char *)nullptr);
        ::_exit(127);
    }

    /** Wait for @p pid and parse its outcome line from @p errPath. */
    WorkerReport
    reapWorker(pid_t pid, const std::string &errPath)
    {
        WorkerReport report;
        int status = 0;
        EXPECT_EQ(::waitpid(pid, &status, 0), pid);
        report.signaled = WIFSIGNALED(status);
        report.exitStatus =
            WIFEXITED(status) ? WEXITSTATUS(status) : -1;

        std::ifstream in(errPath);
        std::string line;
        while (std::getline(in, line)) {
            std::size_t u = 0, e = 0, w = 0;
            if (std::sscanf(line.c_str(),
                            "sweep-worker: units=%zu executed=%zu "
                            "warm=%zu",
                            &u, &e, &w) == 3) {
                report.units = u;
                report.executed = e;
                report.warm = w;
            }
        }
        return report;
    }

    /** Poll @p storeDir until @p count records are on disk. */
    bool
    waitForRecords(const std::string &storeDir, std::size_t count)
    {
        ResultStore probe(storeDir);
        for (int i = 0; i < 1500; ++i) {  // <= 30 s
            if (probe.refresh().records >= count)
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        return false;
    }

    std::string root;
    std::string specPath;
};

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST_F(SweepServiceTest, SigkillMidGridResumesWithoutRework)
{
    const std::string crashed = root + "/store-crashed";
    const std::string clean = root + "/store-clean";

    // Phase 1: park a worker right after its third published record,
    // then SIGKILL it — lease held, shard mid-write, pid now dead.
    const pid_t stalled =
        spawnWorker(crashed, "3", root + "/stalled.err");
    ASSERT_GT(stalled, 0);
    ASSERT_TRUE(waitForRecords(crashed, 3))
        << "stalled worker never reached its checkpoint";
    ASSERT_EQ(::kill(stalled, SIGKILL), 0);
    WorkerReport killedReport =
        reapWorker(stalled, root + "/stalled.err");
    EXPECT_TRUE(killedReport.signaled);

    {
        ResultStore probe(crashed);
        EXPECT_EQ(probe.refresh().records, 3u);
        // The dead worker's lease is still on disk.
        std::size_t leases = 0;
        for (const auto &de :
             std::filesystem::directory_iterator(crashed))
            if (de.path().extension() == ".lease")
                ++leases;
        EXPECT_EQ(leases, 1u);
    }

    // Phase 2: a fresh worker resumes — breaks the stale lease,
    // counts the three stored units as warm, executes exactly the
    // other five, and completes.
    const pid_t resumed =
        spawnWorker(crashed, nullptr, root + "/resumed.err");
    ASSERT_GT(resumed, 0);
    const WorkerReport report =
        reapWorker(resumed, root + "/resumed.err");
    EXPECT_FALSE(report.signaled);
    EXPECT_EQ(report.exitStatus, 0);
    EXPECT_EQ(report.units, 8u);
    EXPECT_EQ(report.warm, 3u);
    EXPECT_EQ(report.executed, 5u);

    // Phase 3: an uninterrupted reference run in a clean store.
    const pid_t reference =
        spawnWorker(clean, nullptr, root + "/clean.err");
    ASSERT_GT(reference, 0);
    const WorkerReport cleanReport =
        reapWorker(reference, root + "/clean.err");
    EXPECT_EQ(cleanReport.exitStatus, 0);
    EXPECT_EQ(cleanReport.executed, 8u);

    // Phase 4: compacted, the crashed-and-resumed store is
    // byte-identical to the never-crashed one.
    {
        ResultStore a(crashed);
        ASSERT_TRUE(a.compact());
        ResultStore b(clean);
        ASSERT_TRUE(b.compact());
    }
    const std::string snapA =
        readFileBytes(crashed + "/snapshot.bsr");
    const std::string snapB = readFileBytes(clean + "/snapshot.bsr");
    ASSERT_FALSE(snapA.empty());
    EXPECT_EQ(snapA, snapB);
}
