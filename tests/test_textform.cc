/**
 * @file
 * Tests for the textual IR serializer/assembler: operation syntax,
 * structural round trips, behavioural equivalence, and error
 * reporting.
 */

#include <gtest/gtest.h>

#include "frontend/compile.hh"
#include "ir/textform.hh"
#include "ir/verifier.hh"
#include "sim/interp.hh"
#include "support/rng.hh"
#include "workloads/synth.hh"

using namespace bsisa;

namespace
{

Operation
roundTripOp(const Operation &op)
{
    Operation parsed;
    std::string error;
    EXPECT_TRUE(parseOperationText(op.toString(), parsed, error))
        << op.toString() << ": " << error;
    return parsed;
}

void
expectSameOp(const Operation &a, const Operation &b)
{
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.src1, b.src1);
    EXPECT_EQ(a.src2, b.src2);
    EXPECT_EQ(a.imm, b.imm);
    EXPECT_EQ(a.target0, b.target0);
    EXPECT_EQ(a.target1, b.target1);
    EXPECT_EQ(a.callee, b.callee);
    EXPECT_EQ(a.succBits, b.succBits);
}

} // namespace

TEST(OpText, RoundTripsEveryForm)
{
    std::vector<Operation> ops = {
        makeNop(),
        makeMovI(5, -123456789),
        makeMov(3, 4),
        makeBin(Opcode::Add, 1, 2, 3),
        makeBin(Opcode::FDiv, 7, 8, 9),
        makeBinI(Opcode::AddI, 1, 2, -7),
        makeBinI(Opcode::ShrI, 1, 2, 63),
        makeLd(4, 5, 1048576),
        makeSt(5, 8, 6),
        makeJmp(12),
        makeTrap(3, 10, 11),
        makeCall(2, 7),
        makeIJmp(9, 1),
        makeRet(),
        makeHalt(),
    };
    // A trap with nonzero succBits.
    Operation trap = makeTrap(1, 2, 3);
    trap.succBits = 3;
    ops.push_back(trap);
    // Both fault polarities.
    ops.push_back(makeFault(4, 99));
    Operation inv_fault = makeFault(4, 99);
    inv_fault.imm = 1;
    ops.push_back(inv_fault);
    // FCvt.
    Operation cvt;
    cvt.op = Opcode::FCvt;
    cvt.dst = 2;
    cvt.src1 = 3;
    ops.push_back(cvt);

    for (const Operation &op : ops) {
        SCOPED_TRACE(op.toString());
        expectSameOp(roundTripOp(op), op);
    }
}

TEST(OpText, RejectsGarbage)
{
    Operation op;
    std::string error;
    EXPECT_FALSE(parseOperationText("frobnicate r1, r2", op, error));
    EXPECT_NE(error.find("unknown mnemonic"), std::string::npos);
    EXPECT_FALSE(parseOperationText("add r1, r2", op, error));
    EXPECT_FALSE(parseOperationText("movi r1", op, error));
    EXPECT_FALSE(parseOperationText("ld r1, [x + 0]", op, error));
    EXPECT_FALSE(parseOperationText("", op, error));
}

TEST(ModuleText, RoundTripsCompiledProgram)
{
    const char *src = R"(
        var g[8];
        var seed = 3;
        fn work(a, b) {
            if (a < b) { return a * b; }
            return a - b;
        }
        fn main() {
            var acc = seed;
            for (var i = 0; i < 20; i = i + 1) {
                acc = acc + work(i, acc & 7);
                g[i & 7] = acc;
                switch (i & 1) { case 0: { acc = acc + 1; }
                                 case 1: { acc = acc ^ 3; } }
            }
            return acc;
        }
    )";
    const Module original = compileBlockCOrDie(src);
    const std::string text = moduleToText(original);
    const ParseModuleResult parsed = parseModuleText(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_TRUE(verifyModule(parsed.module).empty());

    // Structural identity.
    ASSERT_EQ(parsed.module.functions.size(), original.functions.size());
    EXPECT_EQ(parsed.module.mainFunc, original.mainFunc);
    EXPECT_EQ(parsed.module.data, original.data);
    EXPECT_EQ(parsed.module.numOps(), original.numOps());
    // Text fixpoint: serializing again yields identical text.
    EXPECT_EQ(moduleToText(parsed.module), text);

    // Behavioural identity.
    Interp a(original), b(parsed.module);
    a.run();
    b.run();
    EXPECT_EQ(a.exitValue(), b.exitValue());
    EXPECT_EQ(a.dynOps(), b.dynOps());
    EXPECT_EQ(a.dataChecksum(), b.dataChecksum());
}

TEST(ModuleText, RoundTripsGeneratedWorkload)
{
    WorkloadParams params;
    params.name = "txt";
    params.seed = 23;
    params.numFuncs = 6;
    params.numLibFuncs = 2;
    params.itemsPerFunc = 6;
    const Module original = generateWorkload(params);
    const ParseModuleResult parsed =
        parseModuleText(moduleToText(original));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.module.numOps(), original.numOps());
    EXPECT_EQ(parsed.module.functions[1].isLibrary,
              original.functions[1].isLibrary);

    Interp::Limits limits;
    limits.maxOps = 50000;
    Interp a(original, limits), b(parsed.module, limits);
    a.run();
    b.run();
    EXPECT_EQ(a.dynOps(), b.dynOps());
    EXPECT_EQ(a.dataChecksum(), b.dataChecksum());
}

TEST(ModuleText, ReportsErrorsWithLineNumbers)
{
    EXPECT_FALSE(parseModuleText("").ok);
    EXPECT_NE(parseModuleText("nonsense").error.find("line 1"),
              std::string::npos);

    const ParseModuleResult bad_op = parseModuleText(
        "module main=f0\ndata 0\nend\n"
        "func main id=0 library=0 vregs=32 frame=0\n"
        "block\n  bogus r1\nendblock\nendfunc\n");
    EXPECT_FALSE(bad_op.ok);
    EXPECT_NE(bad_op.error.find("line 6"), std::string::npos);

    const ParseModuleResult bad_data = parseModuleText(
        "module main=f0\ndata 2\n5 1\nend\n");
    EXPECT_FALSE(bad_data.ok);
    EXPECT_NE(bad_data.error.find("data entry"), std::string::npos);
}

TEST(ModuleText, CommentsAndBlankLinesIgnored)
{
    const ParseModuleResult parsed = parseModuleText(
        "# a comment\n\nmodule main=f0\ndata 1\n0 42\nend\n\n"
        "# another\n"
        "func main id=0 library=0 vregs=32 frame=0\n"
        "block\n  movi r4, 7\n  halt\nendblock\nendfunc\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.module.data[0], 42u);
    Interp interp(parsed.module);
    interp.run();
    EXPECT_EQ(interp.exitValue(), 7u);
}
