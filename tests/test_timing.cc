/**
 * @file
 * Tests for the cycle-level timing models: structural invariants,
 * latency sensitivity, window/icache/predictor effects, and the
 * conventional-vs-block-structured relationships the paper reports.
 */

#include <gtest/gtest.h>

#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/pipeline.hh"
#include "support/rng.hh"

using namespace bsisa;

namespace
{

/** A loopy branchy program large enough to exercise the machinery. */
const char *kWorkload = R"(
    var d[64];
    var out[64];
    fn helper(x, i) {
        var t = x + i;
        if (d[i & 63] & 1) { t = t * 3 + 1; } else { t = t + 7; }
        if (d[(i + 7) & 63] < 8) { t = t ^ i; }
        out[i & 63] = t;
        return t & 0xffff;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 400; i = i + 1) {
            acc = acc + helper(acc, i);
            acc = acc & 0xfffff;
        }
        return acc;
    }
)";

Module
workloadModule(std::uint64_t seed)
{
    Module m = compileBlockCOrDie(kWorkload);
    Rng rng(seed);
    for (auto &word : m.data)
        word = rng.nextBelow(16);
    return m;
}

RunConfig
defaultRun()
{
    RunConfig config;
    config.limits.maxOps = 1u << 22;
    return config;
}

} // namespace

TEST(IssueSlots, RespectsWidth)
{
    IssueSlots slots(2);
    EXPECT_EQ(slots.allocate(10), 10u);
    EXPECT_EQ(slots.allocate(10), 10u);
    EXPECT_EQ(slots.allocate(10), 11u);  // cycle 10 is full
    EXPECT_EQ(slots.allocate(10), 11u);
    EXPECT_EQ(slots.allocate(10), 12u);
    slots.advanceTo(12);
    // Cycle 12 has one of two slots used, so it still has room.
    EXPECT_EQ(slots.allocate(12), 12u);
    EXPECT_EQ(slots.allocate(12), 13u);
}

TEST(IssueSlots, WindowBoundaryAliasingDoesNotSkipFreeCycles)
{
    // The occupancy word covering the window's last cycles also holds
    // bits for wrapped early-window cycles (cycle + k - capacity).
    // With base = 32 the window is [32, 4128) and its final cycles
    // 4096..4127 share word 0 with the aliased early cycles 32..63.
    // Fill both; the first free cycle is then exactly base + capacity
    // (4128), and the allocator must claim it — not hop past it off
    // the set aliased bits.
    {
        IssueSlots slots(1);
        slots.advanceTo(32);
        for (std::uint64_t c = 32; c < 64; ++c)
            EXPECT_EQ(slots.allocate(c), c);  // aliased bits 32..63
        for (std::uint64_t c = 4096; c < 4128; ++c)
            EXPECT_EQ(slots.allocate(4096), c);  // window tail
        EXPECT_EQ(slots.allocate(4096), 4128u);
    }
    // Same shape with one aliased bit clear (early cycle 48 free):
    // the countr_zero advance must not land on the aliased free bit
    // either — it belongs to cycle 48, not to cycle 4144.
    {
        IssueSlots slots(1);
        slots.advanceTo(32);
        for (std::uint64_t c = 32; c < 64; ++c) {
            if (c == 48)
                continue;
            EXPECT_EQ(slots.allocate(c), c);
        }
        for (std::uint64_t c = 4096; c < 4128; ++c)
            EXPECT_EQ(slots.allocate(4096), c);
        EXPECT_EQ(slots.allocate(4096), 4128u);
        // And cycle 48 really is still free for a request behind it.
        EXPECT_EQ(slots.allocate(48), 48u);
    }
}

TEST(Layout, ConventionalAddressesAreDense)
{
    const Module m = workloadModule(1);
    const ConvLayout layout(m);
    EXPECT_EQ(layout.addrOf(0, 0), codeBase);
    std::uint64_t expect = codeBase;
    for (const auto &fn : m.functions) {
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            EXPECT_EQ(layout.addrOf(fn.id, b), expect);
            expect += fn.blocks[b].ops.size() * opBytes;
        }
    }
    EXPECT_EQ(layout.totalBytes(), expect - codeBase);
    EXPECT_EQ(layout.totalBytes(), m.numOps() * opBytes);
}

TEST(Layout, BsaAddressesAreDense)
{
    const Module m = workloadModule(1);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    const std::uint64_t total = layoutBsaModule(bsa);
    EXPECT_EQ(total, bsa.numOps() * opBytes);
    std::uint64_t expect = codeBase;
    for (const auto &blk : bsa.blocks) {
        EXPECT_EQ(blk.addr, expect);
        expect += blk.sizeBytes();
    }
}

TEST(Timing, BasicInvariants)
{
    const Module m = workloadModule(2);
    const PairResult r = runPair(m, defaultRun());

    // The machine can at most issue issueWidth ops per cycle.
    EXPECT_GE(r.conv.cycles * 16, r.conv.retiredOps);
    EXPECT_GE(r.bsa.cycles * 16, r.bsa.retiredOps);
    // One fetch unit per cycle bounds units by cycles.
    EXPECT_GE(r.conv.cycles, r.conv.retiredUnits);
    EXPECT_GE(r.bsa.cycles, r.bsa.retiredUnits);
    // Conventional retires exactly the dynamic op count.
    EXPECT_EQ(r.conv.retiredOps, r.dynOps);
    EXPECT_GT(r.conv.cycles, 0u);
    EXPECT_GT(r.bsa.cycles, 0u);
}

TEST(Timing, BsaIncreasesBlockSize)
{
    const Module m = workloadModule(3);
    const PairResult r = runPair(m, defaultRun());
    // The core claim behind figure 5.
    EXPECT_GT(r.bsa.avgBlockSize(), r.conv.avgBlockSize() * 1.15);
    // And fewer fetch units are needed for the same work.
    EXPECT_LT(r.bsa.retiredUnits, r.conv.retiredUnits);
}

TEST(Timing, PerfectPredictionIsFaster)
{
    const Module m = workloadModule(4);
    RunConfig real = defaultRun();
    RunConfig oracle = defaultRun();
    oracle.machine.perfectPrediction = true;
    const PairResult rr = runPair(m, real);
    const PairResult ro = runPair(m, oracle);
    EXPECT_LE(ro.conv.cycles, rr.conv.cycles);
    EXPECT_LE(ro.bsa.cycles, rr.bsa.cycles);
    EXPECT_EQ(ro.conv.mispredicts, 0u);
    EXPECT_EQ(ro.bsa.mispredicts, 0u);
    EXPECT_GT(rr.conv.mispredicts, 0u);
}

TEST(Timing, PerfectIcacheIsFaster)
{
    const Module m = workloadModule(5);
    RunConfig real = defaultRun();
    real.machine.icache.sizeBytes = 1024;  // tiny: force misses
    RunConfig ideal = defaultRun();
    ideal.machine.icache.perfect = true;
    const PairResult rr = runPair(m, real);
    const PairResult ri = runPair(m, ideal);
    EXPECT_LT(ri.conv.cycles, rr.conv.cycles);
    EXPECT_LT(ri.bsa.cycles, rr.bsa.cycles);
    EXPECT_EQ(ri.conv.icache.misses, 0u);
}

TEST(Timing, SmallerIcacheNeverFaster)
{
    const Module m = workloadModule(6);
    std::uint64_t prev_cycles = 0;
    for (unsigned kb : {64u, 8u, 1u}) {
        RunConfig config = defaultRun();
        config.machine.icache.sizeBytes = kb * 1024;
        const SimResult r = runConventional(m, config.machine,
                                            config.limits);
        if (prev_cycles) {
            EXPECT_GE(r.cycles, prev_cycles);
        }
        prev_cycles = r.cycles;
    }
}

TEST(Timing, WindowLimitsMatter)
{
    const Module m = workloadModule(7);
    RunConfig wide = defaultRun();
    RunConfig narrow = defaultRun();
    narrow.machine.windowUnits = 2;
    narrow.machine.windowOps = 32;
    const PairResult rw = runPair(m, wide);
    const PairResult rn = runPair(m, narrow);
    EXPECT_GT(rn.conv.cycles, rw.conv.cycles);
    EXPECT_GT(rn.bsa.cycles, rw.bsa.cycles);
}

TEST(Timing, EnlargementDisabledRoughlyMatchesConventional)
{
    const Module m = workloadModule(8);
    RunConfig off = defaultRun();
    off.enlarge.enabled = false;
    const PairResult r = runPair(m, off);
    // Without enlargement the BSA machine fetches one basic block per
    // cycle just like the conventional one; cycle counts should agree
    // within a few percent (predictor details differ slightly).
    const double ratio = double(r.bsa.cycles) / double(r.conv.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
    EXPECT_NEAR(r.bsa.avgBlockSize(), r.conv.avgBlockSize(), 0.01);
}

TEST(Timing, FaultMispredictsArePossible)
{
    const Module m = workloadModule(9);
    const PairResult r = runPair(m, defaultRun());
    // Data-dependent interior branches guarantee some wrong-variant
    // fetches.
    EXPECT_GT(r.bsa.faultMispredicts, 0u);
    EXPECT_GT(r.bsa.predictions, 0u);
}

TEST(Timing, DeterministicAcrossRuns)
{
    const Module m = workloadModule(10);
    const PairResult a = runPair(m, defaultRun());
    const PairResult b = runPair(m, defaultRun());
    EXPECT_EQ(a.conv.cycles, b.conv.cycles);
    EXPECT_EQ(a.bsa.cycles, b.bsa.cycles);
    EXPECT_EQ(a.bsa.mispredicts, b.bsa.mispredicts);
    EXPECT_EQ(a.bsa.icache.misses, b.bsa.icache.misses);
}

TEST(Timing, LongerLatenciesSlowExecution)
{
    // A divide-heavy program must be slower than an add-heavy one of
    // the same op count, demonstrating Table-1 latencies matter.
    const char *divs = R"(
        fn main() {
            var acc = 1000000;
            for (var i = 1; i < 300; i = i + 1) { acc = acc / i + 999983; }
            return acc;
        }
    )";
    const char *adds = R"(
        fn main() {
            var acc = 1000000;
            for (var i = 1; i < 300; i = i + 1) { acc = acc + i + 999983; }
            return acc;
        }
    )";
    RunConfig config = defaultRun();
    const Module md = compileBlockCOrDie(divs);
    const Module ma = compileBlockCOrDie(adds);
    const SimResult rd = runConventional(md, config.machine,
                                         config.limits);
    const SimResult ra = runConventional(ma, config.machine,
                                         config.limits);
    // Per-op cycle cost must be clearly higher for the divide chain.
    const double d_cpi = double(rd.cycles) / double(rd.retiredOps);
    const double a_cpi = double(ra.cycles) / double(ra.retiredOps);
    EXPECT_GT(d_cpi, a_cpi * 1.5);
}
