/**
 * @file
 * Trace capture/replay equivalence tests.
 *
 * The replay path must be indistinguishable from driving a live
 * interpreter: event-by-event the streams match, and every timing
 * model (conventional, BSA, trace cache) produces a bit-identical
 * SimResult from a replayed trace.  runPair (capture-once) must match
 * the seed's direct-interp composition on all eight benchmarks.
 */

#include <gtest/gtest.h>

#include "cache/trace_cache.hh"
#include "codegen/layout.hh"
#include "core/profile.hh"
#include "exp/runner.hh"
#include "sim/trace.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

/** Small-scale limits: enough dynamic blocks to exercise calls,
 *  indirect jumps, mispredicts, and cache misses. */
Interp::Limits
testLimits(const SpecBenchmark &bench)
{
    Interp::Limits limits;
    limits.maxOps = bench.scaledBudget(4000);
    return limits;
}

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
}

void
expectSameSim(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.retiredUnits, b.retiredUnits);
    EXPECT_EQ(a.wrongPathOps, b.wrongPathOps);
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.trapMispredicts, b.trapMispredicts);
    EXPECT_EQ(a.faultMispredicts, b.faultMispredicts);
    EXPECT_EQ(a.cascadeHops, b.cascadeHops);
    EXPECT_EQ(a.stallRedirect, b.stallRedirect);
    EXPECT_EQ(a.stallWindow, b.stallWindow);
    EXPECT_EQ(a.stallIcache, b.stallIcache);
    EXPECT_EQ(a.peakWindowUnits, b.peakWindowUnits);
    EXPECT_EQ(a.peakWindowOps, b.peakWindowOps);
    expectSameCacheStats(a.icache, b.icache);
    expectSameCacheStats(a.dcache, b.dcache);
}

/** The seed's runPair: a private functional execution per consumer. */
PairResult
runPairDirect(const Module &module, const RunConfig &config)
{
    PairResult result;
    const ConvLayout conv_layout(module);
    result.convCodeBytes = conv_layout.totalBytes();
    result.conv =
        runConventional(module, config.machine, config.limits);

    EnlargeConfig enlarge_cfg = config.enlarge;
    ProfileData profile;
    const ProfileData *profile_ptr = nullptr;
    if (config.minMergeBias > 0.0) {
        profile = collectProfile(module, config.limits.maxOps);
        profile_ptr = &profile;
        enlarge_cfg.minMergeBias = config.minMergeBias;
    }
    BsaModule bsa =
        enlargeModule(module, enlarge_cfg, profile_ptr, &result.enlarge);
    result.bsaCodeBytes = layoutBsaModule(bsa);
    result.bsa =
        runBlockStructured(bsa, config.machine, config.limits);

    Interp interp(module, config.limits);
    interp.run();
    result.dynOps = interp.dynOps();
    return result;
}

} // namespace

TEST(Trace, ReplayStreamMatchesInterp)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);  // compress
    const Interp::Limits limits = testLimits(suite[0]);

    const ExecTrace trace = captureTrace(m, limits);
    ASSERT_NE(trace.eventCount, 0u);

    Interp interp(m, limits);
    TraceReplaySource replay(trace);
    BlockEvent live, replayed;
    std::uint64_t n = 0;
    for (;;) {
        const bool live_ok = interp.step(live);
        const bool replay_ok = replay.next(replayed);
        ASSERT_EQ(live_ok, replay_ok) << "at event " << n;
        if (!live_ok)
            break;
        ASSERT_EQ(live.func, replayed.func) << "at event " << n;
        ASSERT_EQ(live.block, replayed.block) << "at event " << n;
        ASSERT_EQ(live.exit, replayed.exit) << "at event " << n;
        ASSERT_EQ(live.taken, replayed.taken) << "at event " << n;
        ASSERT_EQ(live.nextFunc, replayed.nextFunc) << "at event " << n;
        ASSERT_EQ(live.nextBlock, replayed.nextBlock)
            << "at event " << n;
        ASSERT_EQ(live.memCount, replayed.memCount) << "at event " << n;
        for (std::uint32_t a = 0; a < live.memCount; ++a)
            ASSERT_EQ(live.memAddrs[a], replayed.memAddrs[a])
                << "at event " << n << " addr " << a;
        ++n;
    }
    EXPECT_EQ(n, trace.eventCount);
    EXPECT_EQ(trace.dynOps, interp.dynOps());
    EXPECT_EQ(trace.dynBlocks, interp.dynBlocks());
}

TEST(Trace, CaptureRespectsLimits)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    Interp::Limits limits;
    limits.maxBlocks = 100;
    const ExecTrace trace = captureTrace(m, limits);
    EXPECT_EQ(trace.eventCount, 100u);
    EXPECT_EQ(trace.dynBlocks, 100u);
}

TEST(Trace, ProfileFromTraceMatchesCollectProfile)
{
    const auto suite = specint95Suite();
    for (const auto &bench : suite) {
        const Module m = generateWorkload(bench.params);
        const Interp::Limits limits = testLimits(bench);
        const ExecTrace trace = captureTrace(m, limits);
        const ProfileData from_trace = profileFromTrace(trace);
        const ProfileData from_interp =
            collectProfile(m, limits.maxOps);
        ASSERT_EQ(from_trace.size(), from_interp.size())
            << bench.params.name;
        for (const auto &fn : m.functions) {
            for (BlockId b = 0; b < fn.blocks.size(); ++b) {
                // Compare per-block counts through the public lookup.
                const FuncId f =
                    static_cast<FuncId>(&fn - m.functions.data());
                const BranchProfile pt = from_trace.lookup(f, b);
                const BranchProfile pi = from_interp.lookup(f, b);
                ASSERT_EQ(pt.taken, pi.taken) << bench.params.name;
                ASSERT_EQ(pt.notTaken, pi.notTaken)
                    << bench.params.name;
            }
        }
    }
}

TEST(Trace, ConvReplayBitIdentical)
{
    const auto suite = specint95Suite();
    for (const auto &bench : suite) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        const Interp::Limits limits = testLimits(bench);
        const MachineConfig machine;
        const ExecTrace trace = captureTrace(m, limits);
        expectSameSim(runConventional(m, machine, limits),
                      runConventional(m, machine, trace));
    }
}

TEST(Trace, BsaReplayBitIdentical)
{
    const auto suite = specint95Suite();
    for (const auto &bench : suite) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        const Interp::Limits limits = testLimits(bench);
        const MachineConfig machine;
        BsaModule bsa = enlargeModule(m, EnlargeConfig{});
        layoutBsaModule(bsa);
        const ExecTrace trace = captureTrace(m, limits);
        expectSameSim(runBlockStructured(bsa, machine, limits),
                      runBlockStructured(bsa, machine, trace));
    }
}

TEST(Trace, TraceCacheReplayBitIdentical)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[1].params);  // gcc
    const Interp::Limits limits = testLimits(suite[1]);
    const MachineConfig machine;
    const TraceCacheConfig tc;
    const ExecTrace trace = captureTrace(m, limits);
    const TraceCacheResult direct =
        runTraceCache(m, machine, tc, limits);
    const TraceCacheResult replayed =
        runTraceCache(m, machine, tc, trace);
    expectSameSim(direct.sim, replayed.sim);
    EXPECT_EQ(direct.traceHits, replayed.traceHits);
    EXPECT_EQ(direct.traceMisses, replayed.traceMisses);
}

TEST(Trace, RunPairMatchesSeedDirectPath)
{
    const auto suite = specint95Suite();
    for (const auto &bench : suite) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        RunConfig config;
        config.limits = testLimits(bench);
        const PairResult via_replay = runPair(m, config);
        const PairResult direct = runPairDirect(m, config);
        expectSameSim(via_replay.conv, direct.conv);
        expectSameSim(via_replay.bsa, direct.bsa);
        EXPECT_EQ(via_replay.convCodeBytes, direct.convCodeBytes);
        EXPECT_EQ(via_replay.bsaCodeBytes, direct.bsaCodeBytes);
        EXPECT_EQ(via_replay.dynOps, direct.dynOps);
    }
}

TEST(Trace, RunPairWithProfileMatchesSeedDirectPath)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[3].params);  // m88ksim
    RunConfig config;
    config.limits = testLimits(suite[3]);
    config.minMergeBias = 0.75;
    const PairResult via_replay = runPair(m, config);
    const PairResult direct = runPairDirect(m, config);
    expectSameSim(via_replay.conv, direct.conv);
    expectSameSim(via_replay.bsa, direct.bsa);
    EXPECT_EQ(via_replay.bsaCodeBytes, direct.bsaCodeBytes);
}

TEST(Trace, OnePairSharedAcrossConfigsMatchesFreshCaptures)
{
    // The sweep pattern: one capture, many machine configs.
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    RunConfig config;
    config.limits = testLimits(suite[0]);
    const ExecTrace trace = captureTrace(m, config.limits);
    for (unsigned kb : {16u, 32u, 64u}) {
        SCOPED_TRACE(kb);
        RunConfig point = config;
        point.machine.icache.sizeBytes = kb * 1024;
        const PairResult shared = runPair(m, point, trace);
        const PairResult fresh = runPair(m, point);
        expectSameSim(shared.conv, fresh.conv);
        expectSameSim(shared.bsa, fresh.bsa);
    }
}
