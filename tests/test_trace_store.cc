/**
 * @file
 * Tests of the persistent content-addressed trace store.
 *
 * Four properties are pinned down:
 *   1. The on-disk round trip is bit-exact: encode + mmap-open
 *      reproduces every TraceEvent field and pool address of a live
 *      capture, on all eight benchmarks, and the replayed SimResult
 *      is identical.
 *   2. A warm load performs zero functional executions (the
 *      interpreter-invocation counter does not move) and serves the
 *      trace straight out of the mapping.
 *   3. Every corruption class — truncation, a flipped byte in any
 *      section, a stale version, a mismatched key — is detected with
 *      the right status, degrades to live capture with correct
 *      results, and leaves a repaired entry on disk.
 *   4. With no store configured, captureOrLoadTrace is plain
 *      captureTrace.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/runner.hh"
#include "sim/interp.hh"
#include "sim/trace_store.hh"
#include "support/digest.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
    ASSERT_TRUE(out.good());
}

void
expectSameTrace(const ExecTrace &a, const ExecTrace &b)
{
    EXPECT_EQ(a.dynOps, b.dynOps);
    EXPECT_EQ(a.dynBlocks, b.dynBlocks);
    ASSERT_EQ(a.eventCount, b.eventCount);
    ASSERT_EQ(a.memAddrCount, b.memAddrCount);
    for (std::size_t i = 0; i < a.eventCount; ++i) {
        const TraceEvent &x = a.events[i];
        const TraceEvent &y = b.events[i];
        ASSERT_EQ(x.func, y.func) << "event " << i;
        ASSERT_EQ(x.block, y.block) << "event " << i;
        ASSERT_EQ(x.nextFunc, y.nextFunc) << "event " << i;
        ASSERT_EQ(x.nextBlock, y.nextBlock) << "event " << i;
        ASSERT_EQ(x.memBegin, y.memBegin) << "event " << i;
        ASSERT_EQ(x.memCount, y.memCount) << "event " << i;
        ASSERT_EQ(x.exit, y.exit) << "event " << i;
        ASSERT_EQ(x.taken, y.taken) << "event " << i;
    }
    for (std::size_t i = 0; i < a.memAddrCount; ++i)
        ASSERT_EQ(a.memAddrs[i], b.memAddrs[i]) << "addr " << i;
}

void
expectSameSim(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.retiredUnits, b.retiredUnits);
    EXPECT_EQ(a.wrongPathOps, b.wrongPathOps);
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.stallRedirect, b.stallRedirect);
    EXPECT_EQ(a.stallWindow, b.stallWindow);
    EXPECT_EQ(a.stallIcache, b.stallIcache);
    EXPECT_EQ(a.peakWindowUnits, b.peakWindowUnits);
    EXPECT_EQ(a.peakWindowOps, b.peakWindowOps);
    EXPECT_EQ(a.icache.accesses, b.icache.accesses);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.dcache.accesses, b.dcache.accesses);
    EXPECT_EQ(a.dcache.misses, b.dcache.misses);
}

class TraceStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (std::filesystem::temp_directory_path() /
               ("bsisa-test-store-" + std::to_string(::getpid())))
                  .string();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        std::filesystem::create_directories(dir);
        TraceStore::resetStats();
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string dir;
};

} // namespace

TEST_F(TraceStoreTest, RoundTripBitIdenticalOnAllBenchmarks)
{
    for (const SpecBenchmark &bench : specint95Suite()) {
        SCOPED_TRACE(bench.params.name);
        const Module m = generateWorkload(bench.params);
        Interp::Limits limits;
        limits.maxOps = bench.scaledBudget(4000);
        const ExecTrace live = captureTrace(m, limits);

        TraceKey key;
        key.moduleDigest = moduleDigest(m);
        key.maxOps = limits.maxOps;
        key.maxBlocks = limits.maxBlocks;
        const std::string path = dir + "/" + key.fileName();
        writeFile(path, encodeTrace(live, key));

        ExecTrace mapped;
        ASSERT_EQ(openTraceFile(path, key, mapped), TraceOpenStatus::Ok);
        EXPECT_TRUE(mapped.mapped());
        expectSameTrace(live, mapped);

        const MachineConfig machine;
        expectSameSim(runConventional(m, machine, live),
                      runConventional(m, machine, mapped));
    }
}

TEST_F(TraceStoreTest, WarmLoadRunsZeroFunctionalExecutions)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t digest = moduleDigest(m);
    Interp::Limits limits;
    limits.maxOps = suite[0].scaledBudget(4000);

    const TraceStore store(dir);
    const ExecTrace cold = store.load(m, digest, limits);
    EXPECT_FALSE(cold.mapped());
    EXPECT_EQ(TraceStore::stats().coldCaptures, 1u);
    EXPECT_EQ(TraceStore::stats().warmLoads, 0u);

    const std::uint64_t before = interpInvocations();
    const ExecTrace warm = store.load(m, digest, limits);
    EXPECT_EQ(interpInvocations(), before);
    EXPECT_TRUE(warm.mapped());
    EXPECT_EQ(TraceStore::stats().warmLoads, 1u);
    EXPECT_EQ(TraceStore::stats().fallbacks, 0u);
    expectSameTrace(cold, warm);
}

TEST_F(TraceStoreTest, CorruptionMatrixFallsBackAndRepairs)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t digest = moduleDigest(m);
    Interp::Limits limits;
    limits.maxOps = suite[0].scaledBudget(4000);

    TraceKey key;
    key.moduleDigest = digest;
    key.maxOps = limits.maxOps;
    key.maxBlocks = limits.maxBlocks;

    const TraceStore store(dir);
    const std::string path = store.entryPath(key);
    const ExecTrace baseline = store.load(m, digest, limits);
    const MachineConfig machine;
    const SimResult want = runConventional(m, machine, baseline);

    const std::vector<std::uint8_t> pristine = readFile(path);
    ASSERT_GT(pristine.size(), sizeof(TraceFileHeader));
    TraceFileHeader ph;
    std::memcpy(&ph, pristine.data(), sizeof(ph));

    struct Corruption
    {
        const char *name;
        TraceOpenStatus expect;
        std::function<void(std::vector<std::uint8_t> &)> mutate;
    };
    const std::size_t checked =
        offsetof(TraceFileHeader, headerChecksum);
    const Corruption matrix[] = {
        {"truncated mid-header", TraceOpenStatus::BadHeader,
         [](std::vector<std::uint8_t> &b) {
             b.resize(sizeof(TraceFileHeader) / 2);
         }},
        {"truncated mid-event-section", TraceOpenStatus::BadGeometry,
         [](std::vector<std::uint8_t> &b) {
             b.resize(sizeof(TraceFileHeader) + 3);
         }},
        {"flipped header byte", TraceOpenStatus::BadHeader,
         [](std::vector<std::uint8_t> &b) {
             b[offsetof(TraceFileHeader, moduleDigest) + 2] ^= 0x40;
         }},
        {"flipped event-section byte", TraceOpenStatus::BadChecksum,
         [](std::vector<std::uint8_t> &b) {
             b[sizeof(TraceFileHeader) + 1] ^= 0x01;
         }},
        {"flipped address-pool byte", TraceOpenStatus::BadChecksum,
         [&ph](std::vector<std::uint8_t> &b) {
             b[ph.addrOffset + 5] ^= 0x80;
         }},
        {"stale format version", TraceOpenStatus::BadVersion,
         [checked](std::vector<std::uint8_t> &b) {
             // Bump the version and keep the header checksum valid,
             // as a real format migration would find it.
             TraceFileHeader h;
             std::memcpy(&h, b.data(), sizeof(h));
             h.formatVersion += 1;
             std::memcpy(b.data(), &h, sizeof(h));
             h.headerChecksum = fnv1a64(b.data(), checked);
             std::memcpy(b.data(), &h, sizeof(h));
         }},
    };

    for (const Corruption &c : matrix) {
        SCOPED_TRACE(c.name);
        std::vector<std::uint8_t> bytes = pristine;
        c.mutate(bytes);
        writeFile(path, bytes);

        ExecTrace probe;
        EXPECT_EQ(openTraceFile(path, key, probe), c.expect);

        TraceStore::resetStats();
        const ExecTrace recovered = store.load(m, digest, limits);
        EXPECT_EQ(TraceStore::stats().fallbacks, 1u);
        EXPECT_FALSE(recovered.mapped());
        expectSameTrace(baseline, recovered);
        expectSameSim(want, runConventional(m, machine, recovered));

        // The bad entry was atomically rewritten: it opens clean now.
        ExecTrace repaired;
        EXPECT_EQ(openTraceFile(path, key, repaired),
                  TraceOpenStatus::Ok);
        expectSameTrace(baseline, repaired);
    }
}

TEST_F(TraceStoreTest, MismatchedKeyIsRejectedAndRepaired)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t digest = moduleDigest(m);

    Interp::Limits limitsA, limitsB;
    limitsA.maxOps = suite[0].scaledBudget(4000);
    limitsB.maxOps = limitsA.maxOps / 2;

    TraceKey keyA, keyB;
    keyA.moduleDigest = keyB.moduleDigest = digest;
    keyA.maxOps = limitsA.maxOps;
    keyB.maxOps = limitsB.maxOps;
    keyA.maxBlocks = keyB.maxBlocks = limitsA.maxBlocks;
    ASSERT_NE(keyA.fileName(), keyB.fileName());

    const TraceStore store(dir);
    (void)store.load(m, digest, limitsA);

    // Plant A's (internally consistent) entry under B's name, as if a
    // tool shuffled cache files: content addressing must catch it.
    std::error_code ec;
    std::filesystem::copy_file(store.entryPath(keyA),
                               store.entryPath(keyB), ec);
    ASSERT_FALSE(ec);

    ExecTrace probe;
    EXPECT_EQ(openTraceFile(store.entryPath(keyB), keyB, probe),
              TraceOpenStatus::BadKey);

    TraceStore::resetStats();
    const ExecTrace recovered = store.load(m, digest, limitsB);
    EXPECT_EQ(TraceStore::stats().fallbacks, 1u);
    const ExecTrace want = captureTrace(m, limitsB);
    expectSameTrace(want, recovered);

    ExecTrace repaired;
    EXPECT_EQ(openTraceFile(store.entryPath(keyB), keyB, repaired),
              TraceOpenStatus::Ok);
    expectSameTrace(want, repaired);
}

TEST_F(TraceStoreTest, DisabledStoreIsPlainCapture)
{
    ::unsetenv("BSISA_TRACE_DIR");
    EXPECT_FALSE(TraceStore::fromEnv().enabled());

    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    Interp::Limits limits;
    limits.maxOps = suite[0].scaledBudget(4000);

    TraceStore::resetStats();
    const ExecTrace a = captureTrace(m, limits);
    const ExecTrace b = captureOrLoadTrace(m, limits);
    EXPECT_FALSE(b.mapped());
    expectSameTrace(a, b);

    // Disabled means *disabled*: no store traffic at all.
    EXPECT_EQ(TraceStore::stats().warmLoads, 0u);
    EXPECT_EQ(TraceStore::stats().coldCaptures, 0u);
    EXPECT_EQ(TraceStore::stats().fallbacks, 0u);
}

TEST_F(TraceStoreTest, EnvConfiguredStoreServesWarmEntries)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    Interp::Limits limits;
    limits.maxOps = suite[0].scaledBudget(4000);

    ::setenv("BSISA_TRACE_DIR", dir.c_str(), 1);
    const ExecTrace cold = captureOrLoadTrace(m, limits);
    const ExecTrace warm = captureOrLoadTrace(m, limits);
    ::unsetenv("BSISA_TRACE_DIR");

    EXPECT_FALSE(cold.mapped());
    EXPECT_TRUE(warm.mapped());
    expectSameTrace(cold, warm);
}
