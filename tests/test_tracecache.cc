/**
 * @file
 * Tests for the trace cache model and its fetch source (the extension
 * comparing the paper's approach with run-time block combining).
 */

#include <gtest/gtest.h>

#include "cache/trace_cache.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/tc_source.hh"
#include "support/rng.hh"

using namespace bsisa;

namespace
{

Trace
makeTrace(std::uint64_t start, std::vector<std::uint64_t> blocks,
          std::vector<bool> dirs, unsigned ops)
{
    Trace t;
    t.valid = true;
    t.start = start;
    t.blocks = std::move(blocks);
    t.dirs = std::move(dirs);
    t.ops = ops;
    return t;
}

const char *kLoopy = R"(
    var d[16];
    fn main() {
        var acc = 0;
        for (var i = 0; i < 500; i = i + 1) {
            if (d[i & 15] & 1) { acc = acc + i; }
            else { acc = acc ^ (i << 1); }
            acc = acc & 0xffff;
        }
        return acc;
    }
)";

Module
loopyModule()
{
    Module m = compileBlockCOrDie(kLoopy);
    Rng rng(3);
    for (auto &word : m.data)
        word = rng.next() & 3;
    return m;
}

} // namespace

TEST(TraceCacheModel, MissThenHit)
{
    TraceCache tc(TraceCacheConfig{});
    EXPECT_EQ(tc.lookup(100, {true}), nullptr);
    tc.install(makeTrace(100, {100, 200}, {true}, 8));
    const Trace *hit = tc.lookup(100, {true});
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->blocks.size(), 2u);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
}

TEST(TraceCacheModel, DirectionsArePartOfIdentity)
{
    TraceCache tc(TraceCacheConfig{});
    tc.install(makeTrace(100, {100, 200}, {true}, 8));
    // Wrong predicted direction: miss.
    EXPECT_EQ(tc.lookup(100, {false}), nullptr);
    // Prefix rule: the trace's dirs must be covered by predictions.
    EXPECT_EQ(tc.lookup(100, {}), nullptr);
    EXPECT_NE(tc.lookup(100, {true, false}), nullptr);
}

TEST(TraceCacheModel, PathAssociativity)
{
    // Both paths out of a branch can be cached simultaneously.
    TraceCache tc(TraceCacheConfig{});
    tc.install(makeTrace(100, {100, 200}, {true}, 8));
    tc.install(makeTrace(100, {100, 300}, {false}, 9));
    const Trace *taken = tc.lookup(100, {true});
    const Trace *fall = tc.lookup(100, {false});
    ASSERT_NE(taken, nullptr);
    ASSERT_NE(fall, nullptr);
    EXPECT_EQ(taken->blocks[1], 200u);
    EXPECT_EQ(fall->blocks[1], 300u);
}

TEST(TraceCacheModel, ReinstallReplacesInPlace)
{
    TraceCache tc(TraceCacheConfig{});
    tc.install(makeTrace(100, {100, 200}, {true}, 8));
    tc.install(makeTrace(100, {100, 200, 250}, {true}, 12));
    // Same start+dirs slot updated, not duplicated: evicting would be
    // visible through capacity behaviour; directly check contents.
    const Trace *hit = tc.lookup(100, {true});
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->blocks.size(), 3u);
}

TEST(TraceCacheModel, LruEvictionWithinSet)
{
    TraceCacheConfig cfg;
    cfg.entries = 2;
    cfg.assoc = 2;  // one set
    TraceCache tc(cfg);
    tc.install(makeTrace(1, {1, 2}, {true}, 4));
    tc.install(makeTrace(2, {2, 3}, {true}, 4));
    tc.lookup(1, {true});                          // refresh 1
    tc.install(makeTrace(3, {3, 4}, {true}, 4));   // evicts 2
    EXPECT_NE(tc.lookup(1, {true}), nullptr);
    EXPECT_EQ(tc.lookup(2, {true}), nullptr);
    EXPECT_NE(tc.lookup(3, {true}), nullptr);
}

TEST(TcSource, RetiresExactlyTheDynamicOps)
{
    const Module m = loopyModule();
    Interp::Limits limits;
    Interp interp(m, limits);
    interp.run();
    const std::uint64_t want = interp.dynOps();

    MachineConfig machine;
    const TraceCacheResult r =
        runTraceCache(m, machine, TraceCacheConfig{}, limits);
    EXPECT_EQ(r.sim.retiredOps, want);
}

TEST(TcSource, HitsGrowFetchRate)
{
    const Module m = loopyModule();
    Interp::Limits limits;
    MachineConfig machine;

    const SimResult conv = runConventional(m, machine, limits);
    const TraceCacheResult tc =
        runTraceCache(m, machine, TraceCacheConfig{}, limits);

    // A hot loop is exactly what a trace cache eats: many hits, larger
    // average fetch unit, fewer cycles.
    EXPECT_GT(tc.hitRate(), 0.3);
    EXPECT_GT(tc.sim.avgBlockSize(), conv.avgBlockSize() * 1.2);
    EXPECT_LT(tc.sim.cycles, conv.cycles);
}

TEST(TcSource, PerfectPredictionHasNoMispredicts)
{
    const Module m = loopyModule();
    Interp::Limits limits;
    MachineConfig machine;
    machine.perfectPrediction = true;
    const TraceCacheResult r =
        runTraceCache(m, machine, TraceCacheConfig{}, limits);
    EXPECT_EQ(r.sim.mispredicts, 0u);
}

TEST(TcSource, ZeroCapacityDegradesToConventional)
{
    // A trace needs at least 2 blocks; with maxBlocks = 1 nothing is
    // ever installed and behaviour must match the plain machine's
    // block sizes.
    const Module m = loopyModule();
    Interp::Limits limits;
    MachineConfig machine;
    TraceCacheConfig tiny;
    tiny.maxBlocks = 1;
    const TraceCacheResult r =
        runTraceCache(m, machine, tiny, limits);
    const SimResult conv = runConventional(m, machine, limits);
    EXPECT_EQ(r.traceHits, 0u);
    EXPECT_NEAR(r.sim.avgBlockSize(), conv.avgBlockSize(), 1e-9);
}

TEST(TcSource, DeterministicAcrossRuns)
{
    const Module m = loopyModule();
    Interp::Limits limits;
    MachineConfig machine;
    const TraceCacheResult a =
        runTraceCache(m, machine, TraceCacheConfig{}, limits);
    const TraceCacheResult b =
        runTraceCache(m, machine, TraceCacheConfig{}, limits);
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.traceHits, b.traceHits);
}
