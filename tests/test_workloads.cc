/**
 * @file
 * Tests for the synthetic SPECint95-like workload generator: validity,
 * determinism, parameter effects, and the suite's characteristic
 * shapes (code footprints, block sizes, library share).
 */

#include <gtest/gtest.h>

#include "core/enlarge.hh"
#include "ir/verifier.hh"
#include "sim/interp.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

WorkloadParams
tinyParams(std::uint64_t seed = 7)
{
    WorkloadParams p;
    p.name = "tiny";
    p.seed = seed;
    p.numFuncs = 8;
    p.numLibFuncs = 2;
    p.itemsPerFunc = 6;
    return p;
}

} // namespace

TEST(Workloads, GeneratedModuleIsValid)
{
    const Module m = generateWorkload(tinyParams());
    EXPECT_TRUE(verifyModule(m).empty());
    // Register-allocated and split.
    for (const auto &f : m.functions) {
        EXPECT_EQ(f.numVirtualRegs, numArchRegs);
        for (const auto &blk : f.blocks)
            EXPECT_LE(blk.ops.size(), 16u);
    }
}

TEST(Workloads, DeterministicAcrossGenerations)
{
    const Module a = generateWorkload(tinyParams());
    const Module b = generateWorkload(tinyParams());
    ASSERT_EQ(a.functions.size(), b.functions.size());
    ASSERT_EQ(a.numOps(), b.numOps());
    ASSERT_EQ(a.data, b.data);
    // Functional behaviour identical.
    Interp::Limits limits;
    limits.maxOps = 100000;
    Interp ia(a, limits), ib(b, limits);
    ia.run();
    ib.run();
    EXPECT_EQ(ia.dynOps(), ib.dynOps());
    EXPECT_EQ(ia.dataChecksum(), ib.dataChecksum());
}

TEST(Workloads, SeedsChangeTheProgram)
{
    const Module a = generateWorkload(tinyParams(1));
    const Module b = generateWorkload(tinyParams(2));
    EXPECT_NE(a.numOps(), b.numOps());
}

TEST(Workloads, RunsForeverUntilBudget)
{
    const Module m = generateWorkload(tinyParams());
    Interp::Limits limits;
    limits.maxOps = 250000;
    Interp interp(m, limits);
    interp.run();
    EXPECT_FALSE(interp.halted());  // main loop is effectively endless
    EXPECT_GE(interp.dynOps(), 250000u);
}

TEST(Workloads, LibraryFunctionsMarked)
{
    const Module m = generateWorkload(tinyParams());
    unsigned libs = 0;
    for (const auto &f : m.functions)
        libs += f.isLibrary;
    EXPECT_EQ(libs, 2u);
}

TEST(Workloads, LibraryShareIsBounded)
{
    // Library code must execute but not dominate (the condition-5
    // lesson: if it dominates, enlargement cannot help at all).
    WorkloadParams params = tinyParams();
    params.callDensity = 0.3;
    params.libCallFraction = 0.3;
    const Module m = generateWorkload(params);
    std::vector<bool> is_lib;
    for (const auto &f : m.functions)
        is_lib.push_back(f.isLibrary);
    Interp::Limits limits;
    limits.maxOps = 300000;
    Interp interp(m, limits);
    BlockEvent ev;
    std::uint64_t lib_blocks = 0, total = 0;
    while (interp.step(ev)) {
        ++total;
        lib_blocks += is_lib[ev.func];
    }
    EXPECT_GT(lib_blocks, 0u);
    EXPECT_LT(double(lib_blocks) / double(total), 0.35);
}

TEST(Workloads, MoreFunctionsMeanMoreCode)
{
    WorkloadParams small = tinyParams();
    WorkloadParams big = tinyParams();
    big.numFuncs = 32;
    EXPECT_GT(generateWorkload(big).numOps(),
              generateWorkload(small).numOps() * 2);
}

TEST(Workloads, EnlargementAppliesToGenerated)
{
    const Module m = generateWorkload(tinyParams());
    EnlargeStats stats;
    const BsaModule bsa =
        enlargeModule(m, EnlargeConfig{}, nullptr, &stats);
    EXPECT_GT(stats.mergedEdges, 0u);
    EXPECT_GT(stats.expansion(), 1.0);
    for (const auto &blk : bsa.blocks)
        EXPECT_LE(blk.ops.size(), 16u);
}

TEST(SpecSuite, HasEightBenchmarksInPaperOrder)
{
    const auto suite = specint95Suite();
    ASSERT_EQ(suite.size(), 8u);
    const char *names[] = {"compress", "gcc",     "go",   "ijpeg",
                           "li",       "m88ksim", "perl", "vortex"};
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(suite[i].params.name, names[i]);
}

TEST(SpecSuite, Table2InstructionCountsVerbatim)
{
    const auto suite = specint95Suite();
    EXPECT_EQ(suite[0].paperInstructions, 103015025u);  // compress
    EXPECT_EQ(suite[1].paperInstructions, 154450036u);  // gcc
    EXPECT_EQ(suite[2].paperInstructions, 125637006u);  // go
    EXPECT_EQ(suite[3].paperInstructions, 206802135u);  // ijpeg
    EXPECT_EQ(suite[4].paperInstructions, 187727922u);  // li
    EXPECT_EQ(suite[5].paperInstructions, 120738195u);  // m88ksim
    EXPECT_EQ(suite[6].paperInstructions, 78148849u);   // perl
    EXPECT_EQ(suite[7].paperInstructions, 232003378u);  // vortex
    EXPECT_EQ(suite[0].scaledBudget(100), 1030150u);
}

TEST(SpecSuite, CodeFootprintOrdering)
{
    // gcc and go must be the code giants; compress and li tiny — this
    // ordering drives figures 6 and 7.
    const auto suite = specint95Suite();
    std::map<std::string, std::uint64_t> bytes;
    for (const auto &bench : suite)
        bytes[bench.params.name] =
            workloadCodeBytes(generateWorkload(bench.params));
    EXPECT_GT(bytes["gcc"], 4 * bytes["compress"]);
    EXPECT_GT(bytes["go"], 4 * bytes["li"]);
    EXPECT_GT(bytes["gcc"], bytes["m88ksim"]);
    EXPECT_LT(bytes["compress"], 32 * 1024u);
    EXPECT_LT(bytes["li"], 32 * 1024u);
    EXPECT_GT(bytes["gcc"], 128 * 1024u);
}

TEST(SpecSuite, GeneratedSuiteIsValid)
{
    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);
        EXPECT_TRUE(verifyModule(m).empty()) << bench.params.name;
    }
}
