/**
 * @file
 * bsisa-fuzz — differential fuzzing driver.
 *
 *   bsisa-fuzz [--seed N] [--runs N] [--oracle interp|enlarge|models|lockstep|ooo|all]
 *              [--profile NAME] [--minimize] [--corpus DIR]
 *              [--inject skip-fault-suppression|flip-fault-polarity]
 *              [--max-ops N] [--max-failures N] [--expect-failure]
 *       Generate random BlockC programs and check them through the
 *       differential oracles; failing programs are (optionally)
 *       shrunk and written to the corpus directory as .blockc +
 *       .expect reproducer pairs.
 *
 *   bsisa-fuzz --emit DIR [--seed N] [--runs N] [--profile NAME]
 *       Corpus seeding: generate programs (no oracle run beyond the
 *       conventional reference execution) and write them with their
 *       expected-state sidecars into DIR.
 *
 *   bsisa-fuzz --replay DIR [--oracle ...]
 *       Replay every corpus entry in DIR through the oracles and
 *       against its sidecar.
 *
 * Exit status: 0 when the run is clean, 1 on failures — inverted by
 * --expect-failure, which is how CI proves the harness catches a
 * deliberately injected enlargement bug.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "frontend/compile.hh"
#include "fuzz/corpus.hh"
#include "fuzz/gen.hh"
#include "fuzz/harness.hh"
#include "fuzz/oracle.hh"

using namespace bsisa;
using namespace bsisa::fuzz;

namespace
{

int
usage()
{
    std::cerr <<
        "usage: bsisa-fuzz [options]\n"
        "  --seed N         first seed (default 1)\n"
        "  --runs N         number of programs (default 100)\n"
        "  --oracle LIST    interp|enlarge|models|lockstep|ooo|all (default all)\n"
        "  --profile NAME   one generator profile (default: rotate";
    for (const std::string &name : genProfileNames())
        std::cerr << " " << name;
    std::cerr << ")\n"
        "  --minimize       shrink failing programs\n"
        "  --corpus DIR     write reproducers here (default fuzz-out)\n"
        "  --inject BUG     skip-fault-suppression|flip-fault-polarity\n"
        "  --max-ops N      op budget per execution (default 1M)\n"
        "  --max-failures N stop after N failures (default 1; 0 = all)\n"
        "  --expect-failure invert exit status (harness self-test)\n"
        "  --emit DIR       generate corpus entries into DIR\n"
        "  --replay DIR     replay corpus entries in DIR\n";
    return 2;
}

struct Args
{
    std::vector<std::pair<std::string, std::string>> options;

    bool
    has(const std::string &name) const
    {
        for (const auto &[key, value] : options)
            if (key == name)
                return true;
        return false;
    }

    std::string
    get(const std::string &name, const std::string &def) const
    {
        for (const auto &[key, value] : options)
            if (key == name)
                return value;
        return def;
    }

    std::uint64_t
    getU64(const std::string &name, std::uint64_t def) const
    {
        const std::string v = get(name, "");
        return v.empty() ? def : std::stoull(v);
    }
};

/** Corpus seeding: write (seed, profile) programs + sidecars. */
int
cmdEmit(const Args &args, const FuzzOptions &options,
        const std::string &dir)
{
    const std::vector<std::string> profiles =
        options.profile.empty()
            ? genProfileNames()
            : std::vector<std::string>{options.profile};
    unsigned written = 0;
    for (unsigned i = 0; i < options.runs; ++i) {
        const std::uint64_t seed = options.seed + i;
        const std::string &profile = profiles[i % profiles.size()];
        const FuzzProgram program =
            generateProgram(seed, genProfile(profile));
        const std::string source = program.render();

        const CompileResult compiled = compileBlockC(source);
        if (!compiled.ok) {
            std::cerr << "bsisa-fuzz: seed " << seed
                      << " does not compile:\n" << compiled.errors;
            return 1;
        }
        const Expectation e =
            computeExpectation(compiled.module, options.oracle.limits);
        if (!e.halted) {
            std::cerr << "bsisa-fuzz: seed " << seed
                      << " did not halt; not emitting\n";
            return 1;
        }
        const std::string name =
            profile + "-seed" + std::to_string(seed);
        if (!writeCorpusEntry(dir, name, source, e)) {
            std::cerr << "bsisa-fuzz: cannot write " << dir << "/"
                      << name << "\n";
            return 1;
        }
        ++written;
    }
    std::cout << "bsisa-fuzz: emitted " << written << " entries to "
              << dir << "\n";
    (void)args;
    return 0;
}

/** Replay mode: every corpus entry through sidecar + oracles. */
int
cmdReplay(const FuzzOptions &options, const std::string &dir)
{
    const std::vector<std::string> names = listCorpus(dir);
    if (names.empty()) {
        std::cerr << "bsisa-fuzz: no corpus entries in " << dir << "\n";
        return 1;
    }
    unsigned failures = 0;
    for (const std::string &name : names) {
        std::string source;
        Expectation want;
        if (!readCorpusEntry(dir, name, source, want)) {
            std::cerr << "bsisa-fuzz: " << name << ": unreadable\n";
            ++failures;
            continue;
        }
        const CompileResult compiled = compileBlockC(source);
        if (!compiled.ok) {
            std::cerr << "bsisa-fuzz: " << name << ": compile error\n";
            ++failures;
            continue;
        }
        const Expectation got =
            computeExpectation(compiled.module, options.oracle.limits);
        if (got.halted != want.halted || got.exit != want.exit ||
            got.dataChecksum != want.dataChecksum ||
            got.memChecksum != want.memChecksum ||
            got.dynOps != want.dynOps ||
            got.dynBlocks != want.dynBlocks) {
            std::cerr << "bsisa-fuzz: " << name
                      << ": sidecar mismatch\n";
            ++failures;
            continue;
        }
        const OracleResult r =
            checkProgram(source, options.mask, options.oracle);
        if (!r.ok) {
            std::cerr << "bsisa-fuzz: " << name << ": [" << r.oracle
                      << "] " << r.detail << "\n";
            ++failures;
        }
    }
    std::cout << "bsisa-fuzz: replayed " << names.size()
              << " entries, " << failures << " failures\n";
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> valueOptions = {
        "--seed", "--runs", "--oracle", "--profile", "--corpus",
        "--inject", "--max-ops", "--max-failures", "--emit",
        "--replay",
    };
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            return usage();
        const bool takesValue =
            std::find(valueOptions.begin(), valueOptions.end(), arg) !=
            valueOptions.end();
        std::string value;
        if (takesValue) {
            if (i + 1 >= argc)
                return usage();
            value = argv[++i];
        }
        args.options.emplace_back(arg, value);
    }

    FuzzOptions options;
    options.seed = args.getU64("--seed", 1);
    options.runs = unsigned(args.getU64("--runs", 100));
    options.minimize = args.has("--minimize");
    options.profile = args.get("--profile", "");
    options.reproDir = args.get("--corpus", "fuzz-out");
    options.maxFailures = unsigned(args.getU64("--max-failures", 1));
    options.oracle.limits.maxOps =
        args.getU64("--max-ops", 1ull << 20);

    options.mask = parseOracleMask(args.get("--oracle", "all"));
    if (!options.mask) {
        std::cerr << "bsisa-fuzz: bad --oracle value\n";
        return usage();
    }
    const std::string inject = args.get("--inject", "");
    if (!inject.empty()) {
        options.oracle.inject = parseInjectedBug(inject);
        if (options.oracle.inject == InjectedBug::None) {
            std::cerr << "bsisa-fuzz: unknown --inject '" << inject
                      << "'\n";
            return usage();
        }
    }
    if (!options.profile.empty()) {
        const auto &names = genProfileNames();
        if (std::find(names.begin(), names.end(), options.profile) ==
            names.end()) {
            std::cerr << "bsisa-fuzz: unknown --profile '"
                      << options.profile << "'\n";
            return usage();
        }
    }

    if (args.has("--emit"))
        return cmdEmit(args, options, args.get("--emit", ""));
    if (args.has("--replay"))
        return cmdReplay(options, args.get("--replay", ""));

    const FuzzReport report = fuzzRun(options, std::cout);
    if (args.has("--expect-failure")) {
        if (report.ok()) {
            std::cout << "bsisa-fuzz: expected a failure, found none\n";
            return 1;
        }
        const FuzzFailure &f = report.failures.front();
        std::cout << "bsisa-fuzz: injected bug caught: seed " << f.seed
                  << " [" << f.oracle << "], reproducer is "
                  << f.linesAfter << " lines\n";
        return 0;
    }
    return report.ok() ? 0 : 1;
}
