/**
 * @file
 * Sweep-service CLI.
 *
 * Usage:
 *   bsisa-sweep run <spec> --store DIR [--workers N] [--chunk K]
 *                   [--trace-dir DIR]
 *       Coordinate a full sweep: spawn N worker processes (children
 *       of this one), resume anything they leave behind, verify
 *       completeness, compact the store.
 *   bsisa-sweep worker <spec> --store DIR [--chunk K] [--trace-dir D]
 *       Run one worker against an existing store.  Independently
 *       launched workers pointed at the same store cooperate through
 *       leases; this is also what `run` spawns.
 *   bsisa-sweep plan <spec>
 *       Print the plan: spec digest, units, chunks (no simulation).
 *   bsisa-sweep render <spec> --store DIR
 *       Render the spec's figure from stored results, byte-identical
 *       to the monolithic figure drivers.
 *   bsisa-sweep status --store DIR [--trace-dir DIR]
 *       Store health: records, torn tails, leases, plan markers, and
 *       the trace-store listing when one is configured.
 *   bsisa-sweep compact --store DIR
 *       Fold all shards into a deterministic snapshot.
 *
 * Exit status: 0 on success; with BSISA_EXPECT_WARM set, `run` and
 * `worker` additionally fail if any live functional execution
 * happened (the warm-resweep proof, same contract as the bench
 * binaries).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/plan.hh"
#include "exp/result_store.hh"
#include "exp/service.hh"
#include "exp/spec.hh"
#include "sim/interp.hh"
#include "support/env.hh"

using namespace bsisa;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bsisa-sweep run <spec> --store DIR [--workers N] "
        "[--chunk K] [--trace-dir DIR]\n"
        "       bsisa-sweep worker <spec> --store DIR [--chunk K] "
        "[--trace-dir DIR]\n"
        "       bsisa-sweep plan <spec>\n"
        "       bsisa-sweep render <spec> --store DIR\n"
        "       bsisa-sweep status --store DIR [--trace-dir DIR]\n"
        "       bsisa-sweep compact --store DIR\n");
    return 2;
}

struct Cli
{
    std::string command;
    std::string specPath;
    std::string storeDir;
    std::string traceDir;
    std::uint64_t chunk = 0;
    unsigned workers = 1;
};

bool
parseCli(int argc, char **argv, Cli &cli)
{
    if (argc < 2)
        return false;
    cli.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--store") {
            if (++i >= argc)
                return false;
            cli.storeDir = argv[i];
        } else if (arg == "--trace-dir") {
            if (++i >= argc)
                return false;
            cli.traceDir = argv[i];
        } else if (arg == "--chunk") {
            if (++i >= argc)
                return false;
            cli.chunk = std::strtoull(argv[i], nullptr, 10);
        } else if (arg == "--workers") {
            if (++i >= argc)
                return false;
            cli.workers = unsigned(std::strtoul(argv[i], nullptr, 10));
            if (cli.workers == 0)
                cli.workers = 1;
        } else if (!arg.empty() && arg[0] == '-') {
            return false;
        } else if (cli.specPath.empty()) {
            cli.specPath = arg;
        } else {
            return false;
        }
    }
    return true;
}

bool
loadSpec(const Cli &cli, SweepSpec &spec)
{
    if (cli.specPath.empty()) {
        std::fprintf(stderr, "error: missing spec file\n");
        return false;
    }
    std::string error;
    if (!parseSweepSpecFile(cli.specPath, spec, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return false;
    }
    return true;
}

/** The BSISA_EXPECT_WARM contract (same as bench_common.hh): any
 *  live functional execution fails the process. */
int
enforceExpectWarm()
{
    if (envSet("BSISA_EXPECT_WARM") && interpInvocations() != 0) {
        std::fprintf(stderr,
                     "error: BSISA_EXPECT_WARM is set but %llu live "
                     "functional executions ran\n",
                     static_cast<unsigned long long>(
                         interpInvocations()));
        return 1;
    }
    return 0;
}

int
cmdPlan(const Cli &cli)
{
    SweepSpec spec;
    if (!loadSpec(cli, spec))
        return 1;
    SweepPlan plan;
    std::string error;
    if (!buildPlan(spec, cli.chunk, plan, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("spec: %s\n", spec.name.c_str());
    std::printf("digest: %016llx\n",
                static_cast<unsigned long long>(plan.specDigest));
    std::printf("benchmarks: %zu\n", plan.benches.size());
    std::printf("grid points: %zu\n", plan.gridPoints());
    std::printf("work units: %zu (deduplicated)\n",
                plan.units.size());
    std::printf("lease chunks: %zu\n", plan.chunks.size());
    return 0;
}

int
cmdWorker(const Cli &cli)
{
    SweepSpec spec;
    if (!loadSpec(cli, spec))
        return 1;
    SweepWorkerOptions opts;
    opts.storeDir = cli.storeDir;
    opts.chunkOverride = cli.chunk;
    opts.log = &std::cerr;
    const SweepWorkerOutcome outcome = runSweepWorker(spec, opts);
    std::fprintf(stderr,
                 "sweep-worker: units=%zu executed=%zu warm=%zu "
                 "peer-skips=%zu\n",
                 outcome.units, outcome.executed, outcome.warm,
                 outcome.peerSkips);
    if (!outcome.complete)
        return 1;
    return enforceExpectWarm();
}

int
cmdRun(const Cli &cli, const char *argv0)
{
    SweepSpec spec;
    if (!loadSpec(cli, spec))
        return 1;
    SweepRunOptions opts;
    opts.storeDir = cli.storeDir;
    opts.chunkOverride = cli.chunk;
    opts.workers = cli.workers;
    opts.selfExe = argv0;
    opts.specPath = cli.specPath;
    if (!runSweepCoordinator(spec, opts, std::cerr))
        return 1;
    return enforceExpectWarm();
}

int
cmdRender(const Cli &cli)
{
    SweepSpec spec;
    if (!loadSpec(cli, spec))
        return 1;
    std::string error;
    if (!renderSweepFromStore(std::cout, spec, cli.storeDir, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    if (!parseCli(argc, argv, cli))
        return usage();

    // --trace-dir is a convenience for BSISA_TRACE_DIR: it applies to
    // this process and is inherited by spawned workers.
    if (!cli.traceDir.empty()) {
#if defined(__unix__) || defined(__APPLE__)
        ::setenv("BSISA_TRACE_DIR", cli.traceDir.c_str(), 1);
#else
        static std::string assign;
        assign = "BSISA_TRACE_DIR=" + cli.traceDir;
        ::putenv(assign.data());
#endif
    }

    const bool needsStore = cli.command == "run" ||
                            cli.command == "worker" ||
                            cli.command == "render" ||
                            cli.command == "status" ||
                            cli.command == "compact";
    if (needsStore && cli.storeDir.empty()) {
        std::fprintf(stderr, "error: %s needs --store DIR\n",
                     cli.command.c_str());
        return 2;
    }

    if (cli.command == "plan")
        return cmdPlan(cli);
    if (cli.command == "worker")
        return cmdWorker(cli);
    if (cli.command == "run")
        return cmdRun(cli, argv[0]);
    if (cli.command == "render")
        return cmdRender(cli);
    if (cli.command == "status") {
        printSweepStatus(std::cout, cli.storeDir);
        return 0;
    }
    if (cli.command == "compact") {
        ResultStore store(cli.storeDir);
        if (!store.compact()) {
            std::fprintf(stderr, "error: compaction failed\n");
            return 1;
        }
        return 0;
    }
    return usage();
}
