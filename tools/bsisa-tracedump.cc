/**
 * @file
 * Trace-store inspector.
 *
 * Usage:
 *   bsisa-tracedump <entry.bstrace>...   dump header + verify entries
 *   bsisa-tracedump --dir <store-dir>    dump every entry in a store
 *   bsisa-tracedump --verify ...         quiet; exit 1 on any bad entry
 *   bsisa-tracedump --suite-key          print the content key of the
 *                                        benchmark suite at the current
 *                                        BSISA_SCALE (CI cache keying)
 *   bsisa-tracedump --list [dir]         one-line-per-entry listing of
 *                                        a store (key, benchmark,
 *                                        events, bytes); defaults to
 *                                        BSISA_TRACE_DIR
 *
 * Verification re-runs the exact open path the simulator uses (mmap,
 * header + section checksums, event-stream decode), using the entry's
 * own header as the expected key, so a "ok" entry is by construction
 * loadable.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exp/figures.hh"
#include "exp/service.hh"
#include "sim/trace_store.hh"
#include "support/digest.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: bsisa-tracedump [--verify] <entry>...\n"
                 "       bsisa-tracedump [--verify] --dir <store-dir>\n"
                 "       bsisa-tracedump --suite-key\n"
                 "       bsisa-tracedump --list [store-dir]\n");
    return 2;
}

/** Full open-path verification keyed by the entry's own header. */
TraceOpenStatus
verifyEntry(const std::string &path, const TraceFileHeader &h,
            ExecTrace &out)
{
    TraceKey key;
    key.moduleDigest = h.moduleDigest;
    key.maxOps = h.maxOps;
    key.maxBlocks = h.maxBlocks;
    return openTraceFile(path, key, out);
}

int
dumpEntry(const std::string &path, bool quiet)
{
    TraceFileHeader h;
    if (!readTraceHeader(path, h)) {
        std::fprintf(stderr, "%s: cannot read header\n", path.c_str());
        return 1;
    }
    ExecTrace trace;
    const TraceOpenStatus status = verifyEntry(path, h, trace);
    const bool ok = status == TraceOpenStatus::Ok;
    if (quiet) {
        if (!ok)
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         traceOpenStatusName(status));
        return ok ? 0 : 1;
    }

    std::printf("%s\n", path.c_str());
    std::printf("  magic           %.8s\n", h.magic);
    std::printf("  format version  %u (interp %u)\n", h.formatVersion,
                h.interpVersionTag);
    std::printf("  module digest   %016" PRIx64 "\n", h.moduleDigest);
    std::printf("  max ops         %" PRIu64 "\n", h.maxOps);
    std::printf("  max blocks      %" PRIu64 "\n", h.maxBlocks);
    std::printf("  dyn ops         %" PRIu64 "\n", h.dynOps);
    std::printf("  dyn blocks      %" PRIu64 "\n", h.dynBlocks);
    std::printf("  events          %" PRIu64 " (%" PRIu64
                " bytes varint, %.2f B/event)\n",
                h.eventCount, h.eventBytes,
                h.eventCount ? double(h.eventBytes) / double(h.eventCount)
                             : 0.0);
    std::printf("  address pool    %" PRIu64 " addrs at offset %" PRIu64
                "\n",
                h.addrCount, h.addrOffset);
    std::printf("  checksums       header=%016" PRIx64
                " events=%016" PRIx64 " addrs=%016" PRIx64 "\n",
                h.headerChecksum, h.eventChecksum, h.addrChecksum);
    std::printf("  verify          %s\n", traceOpenStatusName(status));
    if (ok) {
        const std::size_t inMem = trace.sizeBytes();
        std::uintmax_t onDisk = 0;
        std::error_code ec;
        onDisk = std::filesystem::file_size(path, ec);
        std::printf("  size            %ju B on disk, %zu B replayed "
                    "(%.2fx)\n",
                    onDisk, inMem,
                    onDisk ? double(inMem) / double(onDisk) : 0.0);
    }
    return ok ? 0 : 1;
}

/** Content key of the whole benchmark suite at the active scale: the
 *  digest CI uses to key its trace-store cache. */
int
printSuiteKey()
{
    const auto suite = specint95Suite();
    const std::uint64_t divisor = scaleDivisor();
    Fnv1a64 h;
    h.u64(divisor).u64(interpVersion).u64(traceStoreFormatVersion);
    for (const auto &bench : suite) {
        const Module m = generateWorkload(bench.params);
        h.u64(moduleDigest(m));
        h.u64(bench.scaledBudget(divisor));
    }
    std::printf("%016" PRIx64 "\n", h.value());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quiet = false;
    std::vector<std::string> paths;
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--verify") {
            quiet = true;
        } else if (arg == "--suite-key") {
            return printSuiteKey();
        } else if (arg == "--list") {
            // Shared with `bsisa-sweep status`: the same listing code
            // renders both tools' view of a store directory.
            const std::string listDir =
                i + 1 < argc ? argv[++i]
                             : TraceStore::fromEnv().directory();
            if (listDir.empty()) {
                std::fprintf(stderr,
                             "--list needs a directory (argument or "
                             "BSISA_TRACE_DIR)\n");
                return 2;
            }
            std::ostringstream os;
            printTraceStoreListing(os, listDir);
            std::fputs(os.str().c_str(), stdout);
            return 0;
        } else if (arg == "--dir") {
            if (++i >= argc)
                return usage();
            dir = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (!dir.empty()) {
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            if (entry.path().extension() == ".bstrace")
                paths.push_back(entry.path().string());
        }
        if (ec) {
            std::fprintf(stderr, "%s: cannot list directory\n",
                         dir.c_str());
            return 1;
        }
        std::sort(paths.begin(), paths.end());
    }
    if (paths.empty())
        return usage();

    int bad = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (i && !quiet)
            std::printf("\n");
        bad += dumpEntry(paths[i], quiet);
    }
    if (!quiet)
        std::printf("%s%zu entries, %d bad\n", paths.size() > 1 ? "\n" : "",
                    paths.size(), bad);
    return bad ? 1 : 0;
}
