/**
 * @file
 * bsisac — the block-structured ISA toolchain driver.
 *
 * A small command-line compiler/simulator front door over the library,
 * in the spirit of a cc(1)-style driver:
 *
 *   bsisac compile prog.bc [-o out.ir] [--no-opt] [--no-ra]
 *       Compile BlockC to the textual IR form.
 *   bsisac run prog.bc|prog.ir [--max-ops N]
 *       Compile (or load IR) and execute functionally.
 *   bsisac sim prog.bc|prog.ir [--max-ops N] [--icache KB]
 *              [--perfect-bp] [--stats]
 *       Cycle-simulate on BOTH machines and print the comparison.
 *   bsisac enlarge prog.bc|prog.ir [--max-ops-per-block N]
 *              [--max-faults N]
 *       Run block enlargement and dump every atomic block.
 *
 * Inputs ending in .ir are parsed as the textual IR (see
 * src/ir/textform.hh); anything else is treated as BlockC source.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "ir/printer.hh"
#include "ir/textform.hh"
#include "ir/verifier.hh"
#include "sim/interp.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace bsisa;

namespace
{

int
usage()
{
    std::cerr <<
        "usage: bsisac <command> <input> [options]\n"
        "  compile <in.bc> [-o out.ir] [--no-opt] [--no-ra]\n"
        "  run     <in.bc|in.ir> [--max-ops N]\n"
        "  sim     <in.bc|in.ir> [--max-ops N] [--icache KB]"
        " [--perfect-bp] [--stats]\n"
        "  enlarge <in.bc|in.ir> [--max-ops-per-block N]"
        " [--max-faults N]\n";
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/** Load a module from BlockC source or textual IR. */
bool
loadModule(const std::string &path, const CompileOptions &options,
           Module &out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::cerr << "bsisac: cannot read '" << path << "'\n";
        return false;
    }
    if (endsWith(path, ".ir")) {
        ParseModuleResult parsed = parseModuleText(text);
        if (!parsed.ok) {
            std::cerr << "bsisac: " << path << ": " << parsed.error
                      << "\n";
            return false;
        }
        out = std::move(parsed.module);
        const auto problems = verifyModule(out);
        if (!problems.empty()) {
            std::cerr << "bsisac: " << path << ": " << problems.front()
                      << "\n";
            return false;
        }
        return true;
    }
    CompileResult result = compileBlockC(text, options);
    if (!result.ok) {
        std::cerr << "bsisac: compilation of '" << path
                  << "' failed:\n"
                  << result.errors;
        return false;
    }
    out = std::move(result.module);
    return true;
}

/** Pull "--flag value" / "--flag" style options out of argv. */
struct Args
{
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> options;

    bool
    has(const std::string &name) const
    {
        for (const auto &[key, value] : options)
            if (key == name)
                return true;
        return false;
    }

    std::string
    get(const std::string &name, const std::string &def) const
    {
        for (const auto &[key, value] : options)
            if (key == name)
                return value;
        return def;
    }
};

Args
parseArgs(int argc, char **argv, int first,
          const std::vector<std::string> &valueOptions)
{
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0 || arg == "-o") {
            const bool takes_value =
                std::find(valueOptions.begin(), valueOptions.end(),
                          arg) != valueOptions.end();
            std::string value;
            if (takes_value && i + 1 < argc)
                value = argv[++i];
            args.options.emplace_back(arg, value);
        } else {
            args.positional.push_back(arg);
        }
    }
    return args;
}

int
cmdCompile(const Args &args)
{
    CompileOptions options;
    options.optimize = !args.has("--no-opt");
    options.allocate = !args.has("--no-ra");
    Module module;
    if (!loadModule(args.positional[0], options, module))
        return 1;
    const std::string out_path = args.get("-o", "");
    if (out_path.empty()) {
        serializeModule(std::cout, module);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "bsisac: cannot write '" << out_path << "'\n";
            return 1;
        }
        serializeModule(out, module);
        std::cout << "wrote " << out_path << " ("
                  << module.numOps() << " ops, "
                  << module.functions.size() << " functions)\n";
    }
    return 0;
}

int
cmdRun(const Args &args)
{
    Module module;
    if (!loadModule(args.positional[0], CompileOptions{}, module))
        return 1;
    Interp::Limits limits;
    limits.maxOps = std::stoull(args.get("--max-ops", "1000000000"));
    Interp interp(module, limits);
    interp.run();
    std::cout << "exit value: " << interp.exitValue() << "\n"
              << "dynamic ops: " << interp.dynOps() << "\n"
              << "dynamic blocks: " << interp.dynBlocks() << "\n"
              << (interp.halted() ? "halted normally\n"
                                  : "stopped at the op budget\n");
    return 0;
}

int
cmdSim(const Args &args)
{
    Module module;
    if (!loadModule(args.positional[0], CompileOptions{}, module))
        return 1;

    RunConfig config;
    config.limits.maxOps =
        std::stoull(args.get("--max-ops", "1000000000"));
    config.machine.icache.sizeBytes =
        std::stoul(args.get("--icache", "64")) * 1024;
    config.machine.perfectPrediction = args.has("--perfect-bp");

    const PairResult r = runPair(module, config);

    Table t({"metric", "conventional", "block-structured"});
    t.addRow({"cycles", Table::fmtSep(r.conv.cycles),
              Table::fmtSep(r.bsa.cycles)});
    t.addRow({"IPC", Table::fmt(r.conv.ipc(), 2),
              Table::fmt(r.bsa.ipc(), 2)});
    t.addRow({"avg block size", Table::fmt(r.conv.avgBlockSize(), 2),
              Table::fmt(r.bsa.avgBlockSize(), 2)});
    t.addRow({"branch accuracy",
              Table::fmt(100.0 * r.conv.branchAccuracy(), 1) + "%",
              Table::fmt(100.0 * r.bsa.branchAccuracy(), 1) + "%"});
    t.addRow({"icache miss rate",
              Table::fmt(100.0 * r.conv.icache.missRate(), 2) + "%",
              Table::fmt(100.0 * r.bsa.icache.missRate(), 2) + "%"});
    t.addRow({"code bytes", Table::fmtSep(r.convCodeBytes),
              Table::fmtSep(r.bsaCodeBytes)});
    t.print(std::cout);
    std::cout << "reduction: " << Table::fmt(100.0 * r.reduction(), 1)
              << "%\n";

    if (args.has("--stats")) {
        StatSet stats;
        stats.set("conv.cycles", double(r.conv.cycles));
        stats.set("conv.retired_ops", double(r.conv.retiredOps));
        stats.set("conv.mispredicts", double(r.conv.mispredicts));
        stats.set("conv.wrong_path_ops", double(r.conv.wrongPathOps));
        stats.set("conv.icache_misses", double(r.conv.icache.misses));
        stats.set("conv.dcache_misses", double(r.conv.dcache.misses));
        stats.set("bsa.cycles", double(r.bsa.cycles));
        stats.set("bsa.retired_ops", double(r.bsa.retiredOps));
        stats.set("bsa.trap_mispredicts",
                  double(r.bsa.trapMispredicts));
        stats.set("bsa.fault_mispredicts",
                  double(r.bsa.faultMispredicts));
        stats.set("bsa.cascade_hops", double(r.bsa.cascadeHops));
        stats.set("bsa.wrong_path_ops", double(r.bsa.wrongPathOps));
        stats.set("bsa.icache_misses", double(r.bsa.icache.misses));
        stats.set("bsa.dcache_misses", double(r.bsa.dcache.misses));
        stats.set("conv.stall_redirect", double(r.conv.stallRedirect));
        stats.set("conv.stall_window", double(r.conv.stallWindow));
        stats.set("conv.stall_icache", double(r.conv.stallIcache));
        stats.set("bsa.stall_redirect", double(r.bsa.stallRedirect));
        stats.set("bsa.stall_window", double(r.bsa.stallWindow));
        stats.set("bsa.stall_icache", double(r.bsa.stallIcache));
        stats.set("enlarge.atomic_blocks",
                  double(r.enlarge.atomicBlocks));
        stats.set("enlarge.expansion", r.enlarge.expansion());
        std::cout << "\n";
        stats.dump(std::cout);
    }
    return 0;
}

int
cmdEnlarge(const Args &args)
{
    Module module;
    if (!loadModule(args.positional[0], CompileOptions{}, module))
        return 1;
    EnlargeConfig config;
    config.maxOps = std::stoul(args.get("--max-ops-per-block", "16"));
    config.maxFaults = std::stoul(args.get("--max-faults", "2"));
    splitOversizedBlocks(module, config.maxOps);
    EnlargeStats stats;
    BsaModule bsa = enlargeModule(module, config, nullptr, &stats);
    layoutBsaModule(bsa);
    std::cout << "atomic blocks: " << stats.atomicBlocks
              << ", heads: " << stats.heads
              << ", trap->fault: " << stats.mergedEdges
              << ", jumps deleted: " << stats.thruMerges
              << ", expansion: " << stats.expansion() << "x\n\n";
    for (const AtomicBlock &blk : bsa.blocks) {
        std::cout << "AB" << blk.id << " f" << blk.func << " @0x"
                  << std::hex << blk.addr << std::dec << " bbs:";
        for (BlockId b : blk.bbs)
            std::cout << " B" << b;
        std::cout << " (succBits " << unsigned(blk.succBits) << ")\n";
        for (const Operation &op : blk.ops)
            std::cout << "    " << op.toString() << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string command = argv[1];
    const Args args = parseArgs(
        argc, argv, 2,
        {"-o", "--max-ops", "--icache", "--max-ops-per-block",
         "--max-faults"});
    if (args.positional.empty())
        return usage();

    if (command == "compile")
        return cmdCompile(args);
    if (command == "run")
        return cmdRun(args);
    if (command == "sim")
        return cmdSim(args);
    if (command == "enlarge")
        return cmdEnlarge(args);
    return usage();
}
